//! Sets: finite unions of [`BasicSet`]s in a common space.

use crate::bset::BasicSet;
use crate::cache::{self, CacheKey, CacheVal};
use crate::error::{Error, Result};
use crate::space::Space;

/// A union of [`BasicSet`]s over one [`Space`].
///
/// Constructed from text (`"{ S[i] : 0 <= i < N }".parse()`), from
/// [`BasicSet`]s, or as the result of algebra on other sets and maps.
#[derive(Debug, Clone)]
pub struct Set {
    space: Space,
    basics: Vec<BasicSet>,
}

impl Set {
    /// The empty set in `space`.
    pub fn empty(space: Space) -> Self {
        Set {
            space,
            basics: Vec::new(),
        }
    }

    /// The unconstrained set in `space`.
    pub fn universe(space: Space) -> Self {
        Set {
            space: space.clone(),
            basics: vec![BasicSet::universe(space)],
        }
    }

    /// A set consisting of a single basic set.
    pub fn from_basic(basic: BasicSet) -> Self {
        Set {
            space: basic.space().clone(),
            basics: vec![basic],
        }
    }

    /// Builds a set from several basic sets (all in the same space).
    ///
    /// # Errors
    /// Returns an error if the basic sets disagree on space.
    pub fn from_basics(space: Space, basics: Vec<BasicSet>) -> Result<Self> {
        for b in &basics {
            space.check_compatible(b.space(), "from_basics")?;
        }
        Ok(Set { space, basics })
    }

    /// The set's space.
    pub fn space(&self) -> &Space {
        &self.space
    }

    /// The disjuncts of the union.
    pub fn basics(&self) -> &[BasicSet] {
        &self.basics
    }

    /// Number of disjuncts.
    pub fn n_basic(&self) -> usize {
        self.basics.len()
    }

    /// Exact emptiness test.
    ///
    /// # Errors
    /// Returns an error on overflow.
    pub fn is_empty(&self) -> Result<bool> {
        for b in &self.basics {
            if !b.is_empty()? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Union with another set in the same space. Disjuncts of `other`
    /// that are structurally identical to one already present are
    /// coalesced away instead of being appended, so repeated unions do
    /// not balloon the disjunct list.
    ///
    /// # Errors
    /// Returns an error on space mismatch.
    pub fn union(&self, other: &Set) -> Result<Set> {
        self.space.check_compatible(&other.space, "union")?;
        let mut basics = self.basics.clone();
        for b in &other.basics {
            if !basics.contains(b) {
                basics.push(b.clone());
            }
        }
        Ok(Set {
            space: self.space.clone(),
            basics,
        })
    }

    /// Intersection with another set in the same space. Results are
    /// memoized on both operands' structure (see [`crate::cache`]).
    ///
    /// # Errors
    /// Returns an error on space mismatch or overflow.
    pub fn intersect(&self, other: &Set) -> Result<Set> {
        self.space.check_compatible(&other.space, "intersect")?;
        let key = CacheKey::Intersect(cache::set_key(self), cache::set_key(other));
        if let Some(s) = cache::lookup_set(&key) {
            return Ok(s);
        }
        let _timer = crate::stats::op_timer(crate::stats::Op::Intersect);
        let mut basics = Vec::new();
        for a in &self.basics {
            for b in &other.basics {
                let c = a.intersect(b)?;
                if !c.is_empty()? {
                    basics.push(c);
                }
            }
        }
        let result = Set {
            space: self.space.clone(),
            basics,
        };
        cache::insert(key, CacheVal::Set(result.clone()));
        Ok(result)
    }

    /// Set difference `self − other`.
    ///
    /// # Errors
    /// Returns an error on space mismatch, overflow, or if `other` contains
    /// existential variables in a form whose complement is not representable
    /// (does not occur for sets built from constraints and exact
    /// projections of the kind used in this crate).
    pub fn subtract(&self, other: &Set) -> Result<Set> {
        self.space.check_compatible(&other.space, "subtract")?;
        let mut current = self.basics.clone();
        for b in &other.basics {
            let mut next = Vec::new();
            for part in &current {
                for piece in subtract_basic(part, b)? {
                    if !piece.is_empty()? {
                        next.push(piece);
                    }
                }
            }
            current = next;
            if current.is_empty() {
                break;
            }
        }
        Ok(Set {
            space: self.space.clone(),
            basics: current,
        })
    }

    /// Whether `self ⊆ other`.
    ///
    /// # Errors
    /// Returns an error on space mismatch or overflow.
    pub fn is_subset(&self, other: &Set) -> Result<bool> {
        self.subtract(other)?.is_empty()
    }

    /// Whether the two sets contain exactly the same points.
    ///
    /// # Errors
    /// Returns an error on space mismatch or overflow.
    pub fn is_equal(&self, other: &Set) -> Result<bool> {
        Ok(self.is_subset(other)? && other.is_subset(self)?)
    }

    /// Whether `point = [params..., dims...]` is in the set.
    ///
    /// # Errors
    /// Returns an error on overflow.
    pub fn contains(&self, point: &[i64]) -> Result<bool> {
        for b in &self.basics {
            if b.contains(point)? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Exact projection: removes dimensions `first .. first+count`.
    ///
    /// # Errors
    /// Returns an error on out-of-range indices or overflow.
    pub fn project_out_dims(&self, first: usize, count: usize) -> Result<Set> {
        let mut basics = Vec::new();
        let mut space = None;
        for b in &self.basics {
            for p in b.project_out_dims(first, count)? {
                if space.is_none() {
                    space = Some(p.space().clone());
                }
                if !p.is_empty()? {
                    basics.push(p);
                }
            }
        }
        let space = match space {
            Some(s) => s,
            None => crate::bset::drop_space_dims(&self.space, first, count),
        };
        Ok(Set { space, basics })
    }

    /// Fixes dimension `dim` to `value` in every disjunct.
    ///
    /// # Errors
    /// Returns an error if `dim` is out of range.
    pub fn fix_dim(&self, dim: usize, value: i64) -> Result<Set> {
        let basics = self
            .basics
            .iter()
            .map(|b| b.fix_dim(dim, value))
            .collect::<Result<Vec<_>>>()?;
        Ok(Set {
            space: self.space.clone(),
            basics,
        })
    }

    /// Fixes parameter `p` to `value` in every disjunct.
    ///
    /// # Errors
    /// Returns an error if `p` is out of range.
    pub fn fix_param(&self, p: usize, value: i64) -> Result<Set> {
        let basics = self
            .basics
            .iter()
            .map(|b| b.fix_param(p, value))
            .collect::<Result<Vec<_>>>()?;
        Ok(Set {
            space: self.space.clone(),
            basics,
        })
    }

    /// Renames the tuple (and/or dim names) without changing content.
    ///
    /// # Errors
    /// Returns an error if arities differ.
    pub fn cast(&self, space: Space) -> Result<Set> {
        let basics = self
            .basics
            .iter()
            .map(|b| b.cast(space.clone()))
            .collect::<Result<Vec<_>>>()?;
        Ok(Set { space, basics })
    }

    /// Removes empty disjuncts and disjuncts subsumed by another disjunct,
    /// then merges pairs of disjuncts whose union is exactly representable
    /// as a single basic set (e.g. the adjacent slabs `x = 2i` and
    /// `x = 2i + 1` become `2i ≤ x ≤ 2i + 1`).
    ///
    /// The merge test is the valid-constraint hull: a candidate is built
    /// from every constraint of either disjunct that also holds for the
    /// other (so it contains both), and the pair is replaced when the
    /// candidate has no integer point outside the pair's union. Constraints
    /// involving existential columns are never transferred — that only
    /// relaxes the candidate, so it can fail the exactness check but never
    /// produce a wrong merge.
    ///
    /// # Errors
    /// Returns an error on overflow.
    pub fn coalesce(&self) -> Result<Set> {
        let mut kept: Vec<BasicSet> = Vec::new();
        for b in &self.basics {
            if b.is_empty()? {
                continue;
            }
            // Drop redundant rows first: every subset/merge test below
            // pays per constraint row.
            let mut b = b.clone();
            b.simplify();
            kept.push(b);
        }
        // Singleton wrappers built once, not inside the O(n²) loop.
        let singles: Vec<Set> = kept.iter().map(|b| Set::from_basic(b.clone())).collect();
        // Subset test that treats "complement not representable" (awkward
        // existentials) as unknown — the caller then keeps the disjunct,
        // which is always sound.
        let subset = |x: &Set, y: &Set| -> Result<bool> {
            match x.is_subset(y) {
                Ok(r) => Ok(r),
                Err(Error::KindMismatch { .. }) => Ok(false),
                Err(e) => Err(e),
            }
        };
        // Drop disjuncts contained in another disjunct.
        let mut result: Vec<BasicSet> = Vec::new();
        'outer: for (i, b) in kept.iter().enumerate() {
            for j in 0..kept.len() {
                if i == j {
                    continue;
                }
                // Keep the earlier one when mutually contained.
                if subset(&singles[i], &singles[j])?
                    && (j < i || !subset(&singles[j], &singles[i])?)
                {
                    continue 'outer;
                }
            }
            result.push(b.clone());
        }
        // Merge pass: each successful merge shrinks the list by one, so the
        // scan restarts at most n − 1 times.
        let mut basics = result;
        let mut i = 0;
        while i < basics.len() {
            let mut merged = false;
            let mut j = i + 1;
            while j < basics.len() {
                if let Some(m) = merge_pair(&self.space, &basics[i], &basics[j])? {
                    basics[i] = m;
                    basics.remove(j);
                    merged = true;
                } else {
                    j += 1;
                }
            }
            // A grown disjunct may now merge with an earlier one.
            i = if merged { 0 } else { i + 1 };
        }
        Ok(Set {
            space: self.space.clone(),
            basics,
        })
    }

    /// A single-disjunct over-approximation: the conjunction of every
    /// transferable constraint (over params and dims, no existentials)
    /// that holds on all of `self`. Always a superset of `self`; exact
    /// only when the union happens to be convex and div-free. Use to cap
    /// disjunct growth where a larger set is sound (e.g. footprints, where
    /// over-approximation only means extra recomputation).
    ///
    /// # Errors
    /// Returns an error on overflow.
    pub fn simple_hull(&self) -> Result<Set> {
        let mut nonempty: Vec<BasicSet> = Vec::new();
        for b in &self.basics {
            if !b.is_empty()? {
                nonempty.push(b.clone());
            }
        }
        if nonempty.len() <= 1 {
            return Ok(Set {
                space: self.space.clone(),
                basics: nonempty,
            });
        }
        let nv = self.space.n_param() + self.space.n_dim();
        let mut valid: Vec<Vec<i64>> = Vec::new();
        for (k, own) in nonempty.iter().enumerate() {
            'row: for row in pub_rows(own, nv) {
                if valid.contains(&row) {
                    continue;
                }
                for (j, other) in nonempty.iter().enumerate() {
                    if j != k && !row_holds_for(&row, other, nv)? {
                        continue 'row;
                    }
                }
                valid.push(row);
            }
        }
        let mut hull = BasicSet::from_rows(self.space.clone(), 0, Vec::new(), valid);
        hull.simplify();
        Ok(Set::from_basic(hull))
    }

    /// Counts the integer points of the set for the given parameter values.
    /// The set must be bounded.
    ///
    /// # Errors
    /// Returns an error if the set is unbounded or on overflow.
    pub fn count_points(&self, param_values: &[i64]) -> Result<u64> {
        let scanner = crate::scan::Scanner::new(self, param_values)?;
        scanner.count()
    }

    /// The smallest axis-aligned box `[lo_k, hi_k]` containing the set, for
    /// the given parameter values. Returns `None` when the set is empty.
    ///
    /// # Errors
    /// Returns an error if the set is unbounded or on overflow.
    pub fn rect_hull(&self, param_values: &[i64]) -> Result<Option<Vec<(i64, i64)>>> {
        let n = self.space.n_dim();
        let mut out = Vec::with_capacity(n);
        for k in 0..n {
            // Project away all dims except k, then take 1-D bounds. The
            // clone of `self` is only needed when no projection runs.
            let tail = if k + 1 < n {
                self.project_out_dims(k + 1, n - k - 1)?
            } else {
                self.clone()
            };
            let s = if k > 0 {
                tail.project_out_dims(0, k)?
            } else {
                tail
            };
            let mut lo = i64::MAX;
            let mut hi = i64::MIN;
            let mut any = false;
            for b in s.basics() {
                let Some((l, h)) = one_dim_bounds(b, param_values)? else {
                    continue;
                };
                any = true;
                lo = lo.min(l);
                hi = hi.max(h);
            }
            if !any {
                return Ok(None);
            }
            out.push((lo, hi));
        }
        Ok(Some(out))
    }

    /// An arbitrary point of the set for the given parameter values
    /// (`None` when empty). The set must be bounded.
    ///
    /// # Errors
    /// Returns an error if the set is unbounded or on overflow.
    pub fn sample_point(&self, param_values: &[i64]) -> Result<Option<Vec<i64>>> {
        let scanner = crate::scan::Scanner::new(self, param_values)?;
        let mut out = None;
        scanner.for_each(&mut |p: &[i64]| {
            out = Some(p.to_vec());
            false
        })?;
        Ok(out)
    }

    /// Substitutes concrete parameter values, leaving a parameter-free set.
    ///
    /// # Errors
    /// Returns an error if the number of values differs from the number of
    /// parameters.
    pub fn fixed_params(&self, values: &[i64]) -> Result<Set> {
        if values.len() != self.space.n_param() {
            return Err(Error::DimOutOfBounds {
                index: values.len(),
                len: self.space.n_param(),
            });
        }
        let mut s = self.clone();
        for (p, &v) in values.iter().enumerate() {
            s = s.fix_param(p, v)?;
        }
        Ok(s)
    }
}

/// Bounds of a 1-dimensional basic set for given parameter values, from
/// the symbolic level bounds (a box over-approximation for strided sets —
/// the documented `rect_hull` semantics). Returns `None` if empty.
fn one_dim_bounds(b: &BasicSet, param_values: &[i64]) -> Result<Option<(i64, i64)>> {
    if b.is_empty()? {
        return Ok(None);
    }
    let set = Set::from_basic(b.clone());
    let scanner = crate::scan::Scanner::new(&set, param_values)?;
    let mut lo = i64::MAX;
    let mut hi = i64::MIN;
    let mut any = false;
    for br in 0..scanner.n_branch() {
        let levels = scanner.branch_bounds(br);
        let Some(lb) = levels.first() else {
            continue;
        };
        if let Some((l, h)) = crate::scan::eval_bounds(lb, param_values, 0)? {
            any = true;
            lo = lo.min(l);
            hi = hi.max(h);
        }
    }
    Ok(if any { Some((lo, hi)) } else { None })
}

/// A disjunct's transferable constraints as ineq rows over
/// `[params | dims | const]` (`nv = n_param + n_dim`); rows touching
/// existential columns are skipped, equalities contribute both directions.
fn pub_rows(bs: &BasicSet, nv: usize) -> Vec<Vec<i64>> {
    let dv = bs.n_div();
    let narrow = |r: &[i64]| -> Option<Vec<i64>> {
        if r[nv..nv + dv].iter().any(|&c| c != 0) {
            return None;
        }
        let mut row = r[..nv].to_vec();
        row.push(r[nv + dv]);
        Some(row)
    };
    let mut rows = Vec::new();
    for r in bs.ineq_rows() {
        rows.extend(narrow(r));
    }
    for r in bs.eq_rows() {
        if let Some(row) = narrow(r) {
            rows.push(row.iter().map(|&c| -c).collect());
            rows.push(row);
        }
    }
    rows
}

/// Whether `row ≥ 0` holds everywhere on `bs`: bs ∩ { row ≤ −1 } = ∅.
fn row_holds_for(row: &[i64], bs: &BasicSet, nv: usize) -> Result<bool> {
    let dv = bs.n_div();
    let mut neg = vec![0i64; nv + dv + 1];
    for (dst, &c) in neg[..nv].iter_mut().zip(&row[..nv]) {
        *dst = -c;
    }
    neg[nv + dv] = -row[nv] - 1;
    let mut cut = bs.clone();
    cut.push_ineq(neg);
    cut.is_empty()
}

/// Attempts to replace `a ∪ b` with one basic set via the valid-constraint
/// hull: collect every constraint of `a` (over params and dims only — rows
/// touching existential columns are skipped) that also holds for `b`, and
/// vice versa. The candidate built from those rows contains both disjuncts
/// by construction; when it additionally has no integer point outside
/// `a ∪ b`, it equals the union exactly and is returned.
fn merge_pair(space: &Space, a: &BasicSet, b: &BasicSet) -> Result<Option<BasicSet>> {
    // Cheap pre-filters keep the expensive exactness subtract rare: only
    // div-free pairs (existential complements are costly and such merges
    // almost never succeed), and at most one "cut" constraint per side —
    // a mergeable adjacent pair disagrees in exactly the facet where the
    // two pieces meet.
    if a.n_div() != 0 || b.n_div() != 0 {
        return Ok(None);
    }
    let nv = space.n_param() + space.n_dim();
    let mut valid: Vec<Vec<i64>> = Vec::new();
    for (own, other) in [(a, b), (b, a)] {
        let mut cuts = 0usize;
        for row in pub_rows(own, nv) {
            if row_holds_for(&row, other, nv)? {
                if !valid.contains(&row) {
                    valid.push(row);
                }
            } else {
                cuts += 1;
                if cuts > 1 {
                    return Ok(None);
                }
            }
        }
    }
    let mut cand = BasicSet::from_rows(space.clone(), 0, Vec::new(), valid);
    cand.simplify();
    let outside = Set {
        space: space.clone(),
        basics: vec![a.clone(), b.clone()],
    };
    // A disjunct whose existentials cannot be complemented makes the
    // exactness test unanswerable — skip the merge rather than fail.
    match Set::from_basic(cand.clone()).subtract(&outside) {
        Ok(diff) if diff.is_empty()? => Ok(Some(cand)),
        Ok(_) => Ok(None),
        Err(Error::KindMismatch { .. }) => Ok(None),
        Err(e) => Err(e),
    }
}

/// `part − b` as a union of basic sets: `part ∩ piece` for each piece of
/// `b`'s complement (divisibility witnesses negate into residue classes;
/// other existentials are removed exactly first where possible).
fn subtract_basic(part: &BasicSet, b: &BasicSet) -> Result<Vec<BasicSet>> {
    match b.complement_pieces() {
        Ok(pieces) => {
            let mut out = Vec::new();
            for piece in pieces {
                out.push(part.intersect(&piece)?);
            }
            Ok(out)
        }
        Err(_) if b.n_div() > 0 => {
            // Try to remove the awkward existentials exactly, then retry.
            let parts = b.project_out_divs()?;
            if parts.len() == 1 && parts[0] == *b {
                return Err(Error::KindMismatch {
                    expected: "complementable basic set",
                });
            }
            let mut current = vec![part.clone()];
            for p in &parts {
                let mut next = Vec::new();
                for piece in &current {
                    next.extend(subtract_basic(piece, p)?);
                }
                current = next;
            }
            Ok(current)
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aff::AffExpr;
    use crate::space::{Space, Tuple};

    fn sp1() -> Space {
        Space::set(&[], Tuple::new(Some("S"), &["i"]))
    }

    /// `{ S[i] : lo <= i <= hi }`
    fn interval(lo: i64, hi: i64) -> Set {
        let sp = sp1();
        let i = AffExpr::dim(&sp, 0).unwrap();
        let b = BasicSet::universe(sp.clone())
            .constrain(&i.ge(&AffExpr::constant(&sp, lo)).unwrap())
            .unwrap()
            .constrain(&i.le(&AffExpr::constant(&sp, hi)).unwrap())
            .unwrap();
        Set::from_basic(b)
    }

    #[test]
    fn union_and_membership() {
        let s = interval(0, 3).union(&interval(10, 12)).unwrap();
        assert!(s.contains(&[2]).unwrap());
        assert!(s.contains(&[11]).unwrap());
        assert!(!s.contains(&[5]).unwrap());
        assert_eq!(s.n_basic(), 2);
    }

    #[test]
    fn intersect_intervals() {
        let s = interval(0, 10).intersect(&interval(5, 20)).unwrap();
        assert!(s.contains(&[5]).unwrap());
        assert!(s.contains(&[10]).unwrap());
        assert!(!s.contains(&[4]).unwrap());
        assert!(!s.contains(&[11]).unwrap());
    }

    #[test]
    fn intersect_disjoint_is_empty() {
        let s = interval(0, 3).intersect(&interval(5, 8)).unwrap();
        assert!(s.is_empty().unwrap());
    }

    #[test]
    fn subtract_middle_splits() {
        let s = interval(0, 10).subtract(&interval(4, 6)).unwrap();
        for i in -1..12 {
            let expect = (0..=10).contains(&i) && !(4..=6).contains(&i);
            assert_eq!(s.contains(&[i]).unwrap(), expect, "i = {i}");
        }
    }

    #[test]
    fn subtract_self_is_empty() {
        let s = interval(0, 10);
        assert!(s.subtract(&s).unwrap().is_empty().unwrap());
    }

    #[test]
    fn subset_and_equality() {
        let a = interval(2, 5);
        let b = interval(0, 10);
        assert!(a.is_subset(&b).unwrap());
        assert!(!b.is_subset(&a).unwrap());
        assert!(!a.is_equal(&b).unwrap());
        let c = interval(0, 5).union(&interval(5, 10)).unwrap();
        assert!(c.is_equal(&b).unwrap());
    }

    #[test]
    fn empty_and_universe() {
        let e = Set::empty(sp1());
        assert!(e.is_empty().unwrap());
        let u = Set::universe(sp1());
        assert!(!u.is_empty().unwrap());
        assert!(e.is_subset(&u).unwrap());
        assert!(u.subtract(&e).unwrap().is_equal(&u).unwrap());
    }

    #[test]
    fn coalesce_merges_adjacent_intervals() {
        // [0,4] ∪ [5,9] is exactly [0,9] over the integers.
        let s = interval(0, 4).union(&interval(5, 9)).unwrap();
        let c = s.coalesce().unwrap();
        assert_eq!(c.n_basic(), 1);
        assert!(c.is_equal(&interval(0, 9)).unwrap());
        // [0,4] ∪ [6,9] has a hole at 5 and must stay two disjuncts.
        let gap = interval(0, 4).union(&interval(6, 9)).unwrap();
        assert_eq!(gap.coalesce().unwrap().n_basic(), 2);
    }

    #[test]
    fn coalesce_merges_shifted_equalities() {
        // { [i, x] : x = 2i } ∪ { x = 2i + 1 } ∪ { x = 2i + 2 } collapses
        // to the slab 2i ≤ x ≤ 2i + 2 — the downsample-footprint shape.
        let sp = Space::set(&[], Tuple::new(Some("S"), &["i", "x"]));
        let i = AffExpr::dim(&sp, 0).unwrap();
        let x = AffExpr::dim(&sp, 1).unwrap();
        let line = |off: i64| {
            let rhs = i.scale(2).unwrap().with_constant(off);
            Set::from_basic(
                BasicSet::universe(sp.clone())
                    .constrain(&x.eq(&rhs).unwrap())
                    .unwrap(),
            )
        };
        let s = line(0).union(&line(1)).unwrap().union(&line(2)).unwrap();
        let c = s.coalesce().unwrap();
        assert_eq!(c.n_basic(), 1);
        assert!(c.is_equal(&s).unwrap());
        assert!(c.contains(&[3, 7]).unwrap());
        assert!(!c.contains(&[3, 9]).unwrap());
    }

    #[test]
    fn simple_hull_bounds_the_union() {
        let s = interval(0, 3).union(&interval(8, 10)).unwrap();
        let h = s.simple_hull().unwrap();
        assert_eq!(h.n_basic(), 1);
        // Over-approximation: contains the gap, keeps the outer bounds.
        assert!(s.is_subset(&h).unwrap());
        assert!(h.is_equal(&interval(0, 10)).unwrap());
    }

    #[test]
    fn coalesce_removes_subsumed() {
        let s = interval(0, 10).union(&interval(2, 5)).unwrap();
        let c = s.coalesce().unwrap();
        assert_eq!(c.n_basic(), 1);
        assert!(c.is_equal(&interval(0, 10)).unwrap());
    }

    #[test]
    fn rect_hull_of_union() {
        let sp = Space::set(&[], Tuple::new(Some("S"), &["i", "j"]));
        let i = AffExpr::dim(&sp, 0).unwrap();
        let j = AffExpr::dim(&sp, 1).unwrap();
        let mk = |ilo: i64, ihi: i64, jlo: i64, jhi: i64| {
            BasicSet::universe(sp.clone())
                .constrain(&i.ge(&AffExpr::constant(&sp, ilo)).unwrap())
                .unwrap()
                .constrain(&i.le(&AffExpr::constant(&sp, ihi)).unwrap())
                .unwrap()
                .constrain(&j.ge(&AffExpr::constant(&sp, jlo)).unwrap())
                .unwrap()
                .constrain(&j.le(&AffExpr::constant(&sp, jhi)).unwrap())
                .unwrap()
        };
        let s = Set::from_basic(mk(0, 2, 0, 1))
            .union(&Set::from_basic(mk(5, 6, -1, 0)))
            .unwrap();
        let h = s.rect_hull(&[]).unwrap().unwrap();
        assert_eq!(h, vec![(0, 6), (-1, 1)]);
        let e = Set::empty(sp.clone());
        assert_eq!(e.rect_hull(&[]).unwrap(), None);
    }

    #[test]
    fn count_points_interval() {
        assert_eq!(interval(0, 9).count_points(&[]).unwrap(), 10);
        assert_eq!(
            interval(0, 3)
                .union(&interval(2, 5))
                .unwrap()
                .count_points(&[])
                .unwrap(),
            6
        );
    }

    #[test]
    fn fixed_params_binds_all() {
        let sp = Space::set(&["N"], Tuple::new(Some("S"), &["i"]));
        let i = AffExpr::dim(&sp, 0).unwrap();
        let n = AffExpr::param(&sp, 0).unwrap();
        let b = BasicSet::universe(sp.clone())
            .constrain(&i.ge(&AffExpr::zero(&sp)).unwrap())
            .unwrap()
            .constrain(&i.lt(&n).unwrap())
            .unwrap();
        let s = Set::from_basic(b).fixed_params(&[4]).unwrap();
        assert_eq!(s.count_points(&[4]).unwrap(), 4);
        assert!(Set::from_basic(BasicSet::universe(sp))
            .fixed_params(&[1, 2])
            .is_err());
    }

    #[test]
    fn sample_point_finds_a_member() {
        let s = interval(5, 9);
        let p = s.sample_point(&[]).unwrap().unwrap();
        assert!(s.contains(&p).unwrap());
        assert_eq!(p, vec![5], "lexicographic scan starts at the minimum");
        let e = Set::empty(sp1());
        assert_eq!(e.sample_point(&[]).unwrap(), None);
    }

    #[test]
    fn subtract_strided_set_uses_residue_complement() {
        // { S[i] : ∃q: i = 3q, 0 <= q <= 3 } — a strided set whose
        // existential witness survives projection.
        let m: crate::Map = "{ T[q] -> S[3q] : 0 <= q <= 3 }".parse().unwrap();
        let strided = m.range().unwrap();
        assert!(strided.basics().iter().any(|b| b.n_div() > 0) || strided.n_basic() > 1);
        let all = interval(0, 9).cast(strided.space().clone()).unwrap();
        let diff = all.subtract(&strided).unwrap();
        for i in 0..=9 {
            let expect = i % 3 != 0;
            assert_eq!(diff.contains(&[i]).unwrap(), expect, "i = {i}: {diff}");
        }
        // And the reverse: strided − all = ∅.
        assert!(strided.subtract(&all).unwrap().is_empty().unwrap());
    }

    #[test]
    fn strided_sets_compare_exactly() {
        let m3: crate::Map = "{ T[q] -> S[3q] : 0 <= q <= 3 }".parse().unwrap();
        let m6: crate::Map = "{ T[q] -> S[6q] : 0 <= q <= 1 }".parse().unwrap();
        let s3 = m3.range().unwrap();
        let s6 = m6.range().unwrap();
        assert!(s6.is_subset(&s3).unwrap());
        assert!(!s3.is_subset(&s6).unwrap());
    }

    #[test]
    fn project_out_dims_set_level() {
        let sp = Space::set(&[], Tuple::new(Some("S"), &["i", "j"]));
        let i = AffExpr::dim(&sp, 0).unwrap();
        let j = AffExpr::dim(&sp, 1).unwrap();
        let b = BasicSet::universe(sp.clone())
            .constrain(&i.ge(&AffExpr::zero(&sp)).unwrap())
            .unwrap()
            .constrain(&i.le(&AffExpr::constant(&sp, 4)).unwrap())
            .unwrap()
            .constrain(&j.eq(&i).unwrap())
            .unwrap();
        let p = Set::from_basic(b).project_out_dims(0, 1).unwrap();
        assert_eq!(p.space().n_dim(), 1);
        for v in -1..7 {
            assert_eq!(p.contains(&[v]).unwrap(), (0..=4).contains(&v), "v={v}");
        }
    }
}
