//! Basic sets: single conjunctions of affine constraints.
//!
//! A [`BasicSet`] is the conjunction of equality and inequality constraints
//! over the columns `[params | tuple dims | existentials | 1]`. Existential
//! columns ("divs") are introduced internally by exact projection and are
//! never visible in the space.

use std::sync::atomic::{AtomicU8, Ordering};

use crate::aff::{Constraint, ConstraintKind};
use crate::cache::{self, CacheKey, CacheVal};
use crate::error::{Error, Result};
use crate::lin;
use crate::omega::{self, System};
use crate::space::Space;

/// `emptiness` flag states (an inline memo carried by every basic set).
const EMPTINESS_UNKNOWN: u8 = 0;
const EMPTINESS_NONEMPTY: u8 = 1;
const EMPTINESS_EMPTY: u8 = 2;

/// A conjunction of affine constraints over a [`Space`], possibly with
/// existentially quantified auxiliary variables.
#[derive(Debug)]
pub struct BasicSet {
    space: Space,
    n_div: usize,
    /// Equality rows over `[params | dims | divs | const]`.
    eqs: Vec<Vec<i64>>,
    /// Inequality rows (`>= 0`) over the same columns.
    ineqs: Vec<Vec<i64>>,
    /// Inline memo for [`BasicSet::is_empty`]: clones inherit the known
    /// answer, so repeated emptiness tests on copies of a checked set skip
    /// even the global memo-table lookup. Reset whenever a constraint row
    /// is added; ignored by `PartialEq`.
    emptiness: AtomicU8,
}

impl Clone for BasicSet {
    fn clone(&self) -> Self {
        BasicSet {
            space: self.space.clone(),
            n_div: self.n_div,
            eqs: self.eqs.clone(),
            ineqs: self.ineqs.clone(),
            emptiness: AtomicU8::new(self.emptiness.load(Ordering::Relaxed)),
        }
    }
}

impl PartialEq for BasicSet {
    fn eq(&self, other: &Self) -> bool {
        self.space == other.space
            && self.n_div == other.n_div
            && self.eqs == other.eqs
            && self.ineqs == other.ineqs
    }
}

impl Eq for BasicSet {}

impl BasicSet {
    /// The unconstrained set over `space`.
    pub fn universe(space: Space) -> Self {
        BasicSet {
            space,
            n_div: 0,
            eqs: Vec::new(),
            ineqs: Vec::new(),
            emptiness: AtomicU8::new(EMPTINESS_UNKNOWN),
        }
    }

    /// The empty set over `space`.
    pub fn empty(space: Space) -> Self {
        let mut b = Self::universe(space);
        // 0 >= 1 is false.
        let mut row = vec![0; b.cols()];
        *row.last_mut().unwrap() = -1;
        b.ineqs.push(row);
        *b.emptiness.get_mut() = EMPTINESS_EMPTY;
        b
    }

    /// The space of this basic set.
    pub fn space(&self) -> &Space {
        &self.space
    }

    /// Number of existential (auxiliary) variables.
    pub fn n_div(&self) -> usize {
        self.n_div
    }

    /// Number of explicit constraints (equalities + inequalities).
    pub fn n_constraint(&self) -> usize {
        self.eqs.len() + self.ineqs.len()
    }

    fn n_param(&self) -> usize {
        self.space.n_param()
    }

    fn n_dim(&self) -> usize {
        self.space.n_dim()
    }

    /// Total columns including the trailing constant.
    fn cols(&self) -> usize {
        self.n_param() + self.n_dim() + self.n_div + 1
    }

    /// Index of the constant column.
    fn const_col(&self) -> usize {
        self.cols() - 1
    }

    /// Adds a public [`Constraint`] (over params + dims, no divs).
    ///
    /// # Errors
    /// Returns an error if the constraint's space is incompatible.
    pub fn add_constraint(&mut self, c: &Constraint) -> Result<()> {
        self.space
            .check_compatible(c.expr().space(), "add_constraint")?;
        let src = c.expr().row();
        // src layout: [params | dims | const]; widen with div columns.
        let mut row = vec![0i64; self.cols()];
        let np = self.n_param();
        let nd = self.n_dim();
        row[..np + nd].copy_from_slice(&src[..np + nd]);
        row[self.const_col()] = src[np + nd];
        match c.kind() {
            ConstraintKind::Equality => self.push_eq(row),
            ConstraintKind::Inequality => self.push_ineq(row),
        }
        Ok(())
    }

    /// Builder-style [`BasicSet::add_constraint`].
    ///
    /// # Errors
    /// Returns an error if the constraint's space is incompatible.
    #[must_use = "constrain returns the constrained set"]
    pub fn constrain(mut self, c: &Constraint) -> Result<Self> {
        self.add_constraint(c)?;
        Ok(self)
    }

    pub(crate) fn push_eq(&mut self, mut row: Vec<i64>) {
        debug_assert_eq!(row.len(), self.cols());
        lin::normalize_eq_row(&mut row);
        self.eqs.push(row);
        *self.emptiness.get_mut() = EMPTINESS_UNKNOWN;
    }

    pub(crate) fn push_ineq(&mut self, mut row: Vec<i64>) {
        debug_assert_eq!(row.len(), self.cols());
        lin::normalize_ineq_row(&mut row);
        self.ineqs.push(row);
        *self.emptiness.get_mut() = EMPTINESS_UNKNOWN;
    }

    /// The raw equality rows over `[params | dims | divs | const]`
    /// (`row · (p, x, e, 1) == 0`). Exposed for clients performing
    /// structural analysis of constraints (e.g. rectangularity checks).
    pub fn eq_rows(&self) -> &[Vec<i64>] {
        &self.eqs
    }

    /// The raw inequality rows over `[params | dims | divs | const]`
    /// (`row · (p, x, e, 1) >= 0`). See [`BasicSet::eq_rows`].
    pub fn ineq_rows(&self) -> &[Vec<i64>] {
        &self.ineqs
    }

    pub(crate) fn from_rows(
        space: Space,
        n_div: usize,
        eqs: Vec<Vec<i64>>,
        ineqs: Vec<Vec<i64>>,
    ) -> Self {
        let b = BasicSet {
            space,
            n_div,
            eqs,
            ineqs,
            emptiness: AtomicU8::new(EMPTINESS_UNKNOWN),
        };
        debug_assert!(b.eqs.iter().chain(&b.ineqs).all(|r| r.len() == b.cols()));
        b
    }

    /// Converts to a raw system over `[params | dims | divs]`.
    pub(crate) fn to_system(&self) -> System {
        System {
            n_vars: self.cols() - 1,
            eqs: self.eqs.clone(),
            ineqs: self.ineqs.clone(),
        }
    }

    pub(crate) fn from_system(space: Space, n_div: usize, sys: System) -> Self {
        debug_assert_eq!(sys.n_vars, space.n_param() + space.n_dim() + n_div);
        BasicSet {
            space,
            n_div,
            eqs: sys.eqs,
            ineqs: sys.ineqs,
            emptiness: AtomicU8::new(EMPTINESS_UNKNOWN),
        }
    }

    /// Exact integer emptiness test.
    ///
    /// Treats parameters as existential: the set is empty iff it contains no
    /// point for *any* parameter values.
    ///
    /// Results are memoized on the constraint rows (see [`crate::cache`]);
    /// feasibility is existential over every column, so the memo key is
    /// independent of the space.
    ///
    /// # Errors
    /// Returns an error on arithmetic overflow.
    pub fn is_empty(&self) -> Result<bool> {
        // All fast paths (inline flag, interval pre-check, memo table) are
        // gated on the global memo switch so a differential run can force
        // the full Omega test (see `stats::set_memo_enabled`).
        let memo = crate::stats::memo_enabled();
        // Inline fast path: this object (or the one it was cloned from) was
        // already tested, so skip the key construction + global lookup.
        if memo {
            match self.emptiness.load(Ordering::Relaxed) {
                EMPTINESS_NONEMPTY => return Ok(false),
                EMPTINESS_EMPTY => return Ok(true),
                _ => {}
            }
        }
        // Interval pre-check: pairwise intersections of tile/disjunct boxes
        // are overwhelmingly *disjoint*, and the contradiction already shows
        // in single-variable bounds. Proving those empty here is O(rows) and
        // skips both the Omega test and the memo-table machinery.
        if memo && self.interval_empty() {
            // The diagnostic cross-check must use the *ungoverned* Omega
            // variant: a governor branch cap would both consume budget and
            // return a conservative "feasible" that fires this assert.
            debug_assert!(
                !omega::feasible_unbounded(&self.to_system())?,
                "interval_empty wrongly claimed empty: eqs={:?} ineqs={:?}",
                self.eqs,
                self.ineqs
            );
            self.emptiness.store(EMPTINESS_EMPTY, Ordering::Relaxed);
            return Ok(true);
        }
        // Two-level memo key. The raw rows hit when the *same* system
        // recurs verbatim, but fusion legality and footprint analysis
        // mostly re-derive systems through intersect/coalesce chains whose
        // raw rows differ while the canonical (simplified) form is shared —
        // keying only on raw rows made those all miss (26% hit rate on the
        // experiment suite). So on a raw miss we simplify and probe again
        // on the canonical rows; feasibility is invariant under `simplify`
        // (it eliminates by unit pivots, drops trivially-true rows, keeps
        // trivially-false ones and dedups parallel constraints keeping the
        // tightest), so Omega then runs on the cheaper canonical system.
        // One hit/miss is recorded per call: a hit on either level is a
        // hit. Both keys are stored so the verbatim fast path warms too.
        let raw_key = CacheKey::IsEmpty(cache::rows_key(self));
        let mut hit = cache::probe_bool(&raw_key);
        let mut canon_key = None;
        if hit.is_none() {
            let mut canon = self.clone();
            canon.simplify();
            let ck = CacheKey::IsEmpty(cache::rows_key(&canon));
            if ck != raw_key {
                hit = cache::probe_bool(&ck);
                canon_key = Some(ck);
            }
            if hit.is_none() {
                let sat = {
                    let _timer = crate::stats::op_timer(crate::stats::Op::IsEmpty);
                    omega::feasible_sat(&canon.to_system())?
                };
                if sat == omega::Sat::CappedFeasible {
                    // Budget-capped conservative answer: sound to act on
                    // (non-empty keeps dependences and excludes fusion) but
                    // not a fact about the set, so it must not pollute the
                    // memo table or the inline emptiness flag — a later
                    // uncapped run must be free to compute the exact answer.
                    crate::stats::record(crate::stats::Op::IsEmpty, false);
                    return Ok(false);
                }
                let v = sat == omega::Sat::Infeasible;
                if let Some(ck) = &canon_key {
                    cache::insert(ck.clone(), CacheVal::Bool(v));
                }
                cache::insert(raw_key.clone(), CacheVal::Bool(v));
                crate::stats::record(crate::stats::Op::IsEmpty, false);
                self.emptiness.store(
                    if v {
                        EMPTINESS_EMPTY
                    } else {
                        EMPTINESS_NONEMPTY
                    },
                    Ordering::Relaxed,
                );
                return Ok(v);
            }
            // Canonical hit: back-propagate to the raw key so this exact
            // system hits on the first probe next time.
            cache::insert(raw_key, CacheVal::Bool(hit.unwrap()));
        }
        crate::stats::record(crate::stats::Op::IsEmpty, true);
        let v = hit.unwrap();
        self.emptiness.store(
            if v {
                EMPTINESS_EMPTY
            } else {
                EMPTINESS_NONEMPTY
            },
            Ordering::Relaxed,
        );
        Ok(v)
    }

    /// Sound incomplete emptiness test by interval reasoning: tracks a
    /// lower/upper bound per column from rows touching a single variable
    /// and reports `true` only on a definite contradiction. `false` means
    /// "unknown", not "non-empty".
    fn interval_empty(&self) -> bool {
        enum Vars {
            Zero,
            One(usize),
            Many,
        }
        let cc = self.const_col();
        let mut lb = vec![i64::MIN; cc];
        let mut ub = vec![i64::MAX; cc];
        let vars = |r: &[i64]| -> Vars {
            let mut found = Vars::Zero;
            for (j, &a) in r[..cc].iter().enumerate() {
                if a != 0 {
                    if matches!(found, Vars::One(_)) {
                        return Vars::Many;
                    }
                    found = Vars::One(j);
                }
            }
            found
        };
        for r in &self.eqs {
            let c = r[cc];
            match vars(r) {
                // 0 == -c: contradiction iff c != 0.
                Vars::Zero => {
                    if c != 0 {
                        return true;
                    }
                }
                Vars::One(j) => {
                    let a = r[j];
                    // a·x == -c has an integer solution iff a | c.
                    if c % a != 0 {
                        return true;
                    }
                    let v = -c / a;
                    lb[j] = lb[j].max(v);
                    ub[j] = ub[j].min(v);
                    if lb[j] > ub[j] {
                        return true;
                    }
                }
                Vars::Many => {}
            }
        }
        for r in &self.ineqs {
            let c = r[cc];
            match vars(r) {
                // 0 >= -c: contradiction iff c < 0.
                Vars::Zero => {
                    if c < 0 {
                        return true;
                    }
                }
                Vars::One(j) => {
                    let a = r[j];
                    if a > 0 {
                        // x >= ceil(-c / a)
                        lb[j] = lb[j].max(-c.div_euclid(a));
                    } else {
                        // x <= floor(c / -a)
                        ub[j] = ub[j].min(c.div_euclid(-a));
                    }
                    if lb[j] > ub[j] {
                        return true;
                    }
                }
                Vars::Many => {}
            }
        }
        false
    }

    /// Intersection (same space). Existential columns of both operands are
    /// kept side by side.
    ///
    /// # Errors
    /// Returns an error on space mismatch.
    pub fn intersect(&self, other: &BasicSet) -> Result<BasicSet> {
        self.space.check_compatible(&other.space, "intersect")?;
        let nv = self.n_param() + self.n_dim();
        let n_div = self.n_div + other.n_div;
        let cols = nv + n_div + 1;
        let widen = |row: &[i64], div_at: usize, own_divs: usize| -> Vec<i64> {
            let mut r = vec![0i64; cols];
            r[..nv].copy_from_slice(&row[..nv]);
            r[nv + div_at..nv + div_at + own_divs].copy_from_slice(&row[nv..nv + own_divs]);
            r[cols - 1] = row[row.len() - 1];
            r
        };
        let mut eqs = Vec::with_capacity(self.eqs.len() + other.eqs.len());
        let mut ineqs = Vec::with_capacity(self.ineqs.len() + other.ineqs.len());
        for r in &self.eqs {
            eqs.push(widen(r, 0, self.n_div));
        }
        for r in &other.eqs {
            eqs.push(widen(r, self.n_div, other.n_div));
        }
        for r in &self.ineqs {
            ineqs.push(widen(r, 0, self.n_div));
        }
        for r in &other.ineqs {
            ineqs.push(widen(r, self.n_div, other.n_div));
        }
        Ok(BasicSet {
            space: self.space.clone(),
            n_div,
            eqs,
            ineqs,
            emptiness: AtomicU8::new(EMPTINESS_UNKNOWN),
        })
    }

    /// Whether `point = [params..., dims...]` is in the set (existentials
    /// are solved for).
    ///
    /// # Errors
    /// Returns an error on overflow.
    ///
    /// # Panics
    /// Panics if `point` has the wrong length.
    pub fn contains(&self, point: &[i64]) -> Result<bool> {
        let nv = self.n_param() + self.n_dim();
        assert_eq!(point.len(), nv, "point has wrong dimensionality");
        if self.n_div == 0 {
            for r in &self.eqs {
                if row_eval(r, point, nv)? != 0 {
                    return Ok(false);
                }
            }
            for r in &self.ineqs {
                if row_eval(r, point, nv)? < 0 {
                    return Ok(false);
                }
            }
            return Ok(true);
        }
        // Substitute the point and test feasibility over the divs.
        let mut sys = System::new(self.n_div);
        for (dst, src) in [(&mut sys.eqs, &self.eqs), (&mut sys.ineqs, &self.ineqs)] {
            for r in src.iter() {
                let mut row = vec![0i64; self.n_div + 1];
                row[..self.n_div].copy_from_slice(&r[nv..nv + self.n_div]);
                row[self.n_div] = row_eval(r, point, nv)?;
                dst.push(row);
            }
        }
        omega::feasible(&sys)
    }

    /// Exact projection: eliminates dimensions `first .. first + count`
    /// (absolute dim indices) and removes them from the space, producing a
    /// union of basic sets in the smaller space.
    ///
    /// # Errors
    /// Returns an error on overflow or out-of-range indices.
    pub fn project_out_dims(&self, first: usize, count: usize) -> Result<Vec<BasicSet>> {
        if first + count > self.n_dim() {
            return Err(Error::DimOutOfBounds {
                index: first + count,
                len: self.n_dim(),
            });
        }
        if count == 0 {
            return Ok(vec![self.clone()]);
        }
        let key = CacheKey::ProjectDims(cache::bset_key(self), first, count);
        if let Some(v) = cache::lookup_bsets(&key) {
            return Ok(v);
        }
        let _timer = crate::stats::op_timer(crate::stats::Op::Project);
        let np = self.n_param();
        let new_space = drop_space_dims(&self.space, first, count);
        // Eliminate columns np+first .. np+first+count, one at a time.
        // After each elimination the later target columns shift left by one.
        let mut systems = vec![(self.to_system(), self.n_div)];
        for k in 0..count {
            let col = np + first + (count - 1 - k); // eliminate from the right
            let mut next = Vec::new();
            for (sys, divs_before) in systems {
                for out in omega::eliminate_col(&sys, col)? {
                    // Any appended columns are fresh divs.
                    let grown = out.n_vars + 1 - sys.n_vars; // net change +? or 0
                    let new_divs = divs_before + grown;
                    next.push((out, new_divs));
                }
            }
            systems = next;
        }
        let result: Vec<BasicSet> = systems
            .into_iter()
            .map(|(sys, n_div)| BasicSet::from_system(new_space.clone(), n_div, sys))
            .collect();
        cache::insert(key, CacheVal::BSets(result.clone()));
        Ok(result)
    }

    /// Removes existential columns where this is *cheaply exact* — a div
    /// with a unit coefficient in some equality (substitution), unit
    /// coefficients in all its inequality occurrences and no equality
    /// (exact Fourier–Motzkin), or no occurrences at all. Remaining divs
    /// (divisibility witnesses and strided bounds) are kept: they are
    /// existentials either way, so semantics never change. Eliminations of
    /// this restricted kind never introduce new columns, so the loop
    /// strictly shrinks and coefficients stay small.
    pub(crate) fn project_out_divs(&self) -> Result<Vec<BasicSet>> {
        if self.n_div == 0 {
            return Ok(vec![self.clone()]);
        }
        let np_nd = self.n_param() + self.n_dim();
        let mut work = vec![(self.to_system(), self.n_div)];
        let mut done = Vec::new();
        while let Some((sys, n_div)) = work.pop() {
            // Find an eliminable div column.
            let col = (0..n_div).map(|d| np_nd + d).find(|&c| {
                let unit_eq = sys.eqs.iter().any(|r| r[c] == 1 || r[c] == -1);
                let in_eq = sys.eqs.iter().any(|r| r[c] != 0);
                let ineq_unit = sys
                    .ineqs
                    .iter()
                    .filter(|r| r[c] != 0)
                    .all(|r| r[c] == 1 || r[c] == -1);
                let in_ineq = sys.ineqs.iter().any(|r| r[c] != 0);
                unit_eq || (!in_eq && ineq_unit) || (!in_eq && !in_ineq)
            });
            match col {
                None => done.push(BasicSet::from_system(self.space.clone(), n_div, sys)),
                Some(c) => {
                    for out in omega::eliminate_col(&sys, c)? {
                        debug_assert_eq!(out.n_vars + 1, sys.n_vars, "restricted elimination");
                        work.push((out, n_div - 1));
                    }
                }
            }
        }
        Ok(done)
    }

    /// Fixes dimension `dim` (absolute index) to the constant `value`.
    ///
    /// # Errors
    /// Returns an error if `dim` is out of range.
    pub fn fix_dim(&self, dim: usize, value: i64) -> Result<BasicSet> {
        if dim >= self.n_dim() {
            return Err(Error::DimOutOfBounds {
                index: dim,
                len: self.n_dim(),
            });
        }
        let mut b = self.clone();
        let mut row = vec![0i64; b.cols()];
        row[b.n_param() + dim] = 1;
        let cc = b.const_col();
        row[cc] = -value;
        b.push_eq(row);
        Ok(b)
    }

    /// Fixes parameter `p` to the constant `value`.
    ///
    /// # Errors
    /// Returns an error if `p` is out of range.
    pub fn fix_param(&self, p: usize, value: i64) -> Result<BasicSet> {
        if p >= self.n_param() {
            return Err(Error::DimOutOfBounds {
                index: p,
                len: self.n_param(),
            });
        }
        let mut b = self.clone();
        let mut row = vec![0i64; b.cols()];
        row[p] = 1;
        let cc = b.const_col();
        row[cc] = -value;
        b.push_eq(row);
        Ok(b)
    }

    /// Gauss-simplifies in place: uses equalities with unit coefficients to
    /// eliminate variables from other constraints, removes duplicate and
    /// trivially-true rows. Semantics are unchanged.
    pub fn simplify(&mut self) {
        // Use each equality with a ±1 pivot to clean the other rows.
        let cols = self.cols();
        for i in 0..self.eqs.len() {
            let Some(pivot) = (0..cols - 1).find(|&c| {
                let v = self.eqs[i][c];
                v == 1 || v == -1
            }) else {
                continue;
            };
            let eq = self.eqs[i].clone();
            let a = eq[pivot];
            for (j, r) in self.eqs.iter_mut().enumerate() {
                if j == i || r[pivot] == 0 {
                    continue;
                }
                let k = -(r[pivot] * a);
                if lin::row_add_mul(r, &eq, k).is_err() {
                    continue;
                }
                lin::normalize_eq_row(r);
            }
            for r in self.ineqs.iter_mut() {
                if r[pivot] == 0 {
                    continue;
                }
                let k = -(r[pivot] * a);
                if lin::row_add_mul(r, &eq, k).is_err() {
                    continue;
                }
                lin::normalize_ineq_row(r);
            }
        }
        // Drop trivially-true rows and duplicates.
        self.eqs.retain(|r| r.iter().any(|&c| c != 0));
        self.ineqs.retain(|r| {
            let (coefs, c) = r.split_at(cols - 1);
            coefs.iter().any(|&v| v != 0) || c[0] < 0
        });
        self.eqs.sort();
        self.eqs.dedup();
        // Parallel inequalities (identical coefficient vector) — keep only
        // the tightest. Sorting puts same-coefficient rows adjacent with
        // the smallest constant (the binding one) first. Repeated
        // intersections of translated copies of a set otherwise pile up
        // dozens of slack parallel rows and every later Omega solve pays
        // for them.
        self.ineqs.sort();
        self.ineqs.dedup_by(|a, b| a[..cols - 1] == b[..cols - 1]);
    }

    /// The negation of each constraint, as div-free rows suitable for
    /// building the complement. Only valid for basic sets without divs.
    pub(crate) fn negated_constraints(&self) -> Result<Vec<NegatedEntry>> {
        if self.n_div != 0 {
            return Err(Error::KindMismatch {
                expected: "div-free basic set",
            });
        }
        let cols = self.cols();
        let mut out = Vec::new();
        for r in &self.eqs {
            // ¬(e = 0) = (e >= 1) ∪ (e <= -1)
            let mut pos = r.clone();
            pos[cols - 1] -= 1;
            let mut neg: Vec<i64> = r.iter().map(|&x| -x).collect();
            neg[cols - 1] -= 1;
            out.push((Vec::new(), vec![pos]));
            out.push((Vec::new(), vec![neg]));
        }
        for r in &self.ineqs {
            // ¬(e >= 0) = (-e - 1 >= 0)
            let mut neg: Vec<i64> = r.iter().map(|&x| -x).collect();
            neg[cols - 1] -= 1;
            out.push((Vec::new(), vec![neg]));
        }
        Ok(out)
    }

    /// The complement of this basic set as a union of basic sets, handling
    /// *divisibility witnesses*: divs each appearing in exactly one
    /// equality `a·q = e` and no inequality negate into the residue classes
    /// `∃q: e = a·q + r` for `r ∈ [1, a−1]`.
    ///
    /// # Errors
    /// Returns [`Error::KindMismatch`] if a div appears in an inequality or
    /// in several constraints (does not arise from this crate's own
    /// operations after [`BasicSet::project_out_divs`]).
    pub(crate) fn complement_pieces(&self) -> Result<Vec<BasicSet>> {
        if self.n_div == 0 {
            let mut out = Vec::new();
            let mut context = BasicSet::universe(self.space.clone());
            for (eqs, ineqs) in self.negated_constraints()? {
                let mut piece = context.clone();
                for r in &eqs {
                    piece.push_eq(r.clone());
                }
                for r in &ineqs {
                    piece.push_ineq(r.clone());
                }
                out.push(piece);
                // Disjoint decomposition: assert the complement of the
                // negation before the next constraint.
                for r in &ineqs {
                    let mut comp: Vec<i64> = r.iter().map(|&x| -x).collect();
                    let last = comp.len() - 1;
                    comp[last] -= 1;
                    context.push_ineq(comp);
                }
            }
            return Ok(out);
        }
        // Classify divs: each must be a pure divisibility witness.
        let np_nd = self.n_param() + self.n_dim();
        let mut div_eq_idx: Vec<usize> = Vec::with_capacity(self.n_div);
        for d in 0..self.n_div {
            let col = np_nd + d;
            if self.ineqs.iter().any(|r| r[col] != 0) {
                return Err(Error::KindMismatch {
                    expected: "complementable basic set",
                });
            }
            let uses: Vec<usize> = self
                .eqs
                .iter()
                .enumerate()
                .filter(|(_, r)| r[col] != 0)
                .map(|(i, _)| i)
                .collect();
            if uses.len() != 1 {
                return Err(Error::KindMismatch {
                    expected: "complementable basic set",
                });
            }
            // The equality must not mention any *other* div (independent
            // witnesses only).
            let row = &self.eqs[uses[0]];
            for d2 in 0..self.n_div {
                if d2 != d && row[np_nd + d2] != 0 {
                    return Err(Error::KindMismatch {
                        expected: "complementable basic set",
                    });
                }
            }
            div_eq_idx.push(uses[0]);
        }
        // Complement = ∪_d ¬D_d  ∪  (all D_d ∧ ¬C) where C = the div-free
        // constraints.
        let mut out = Vec::new();
        for (d, &eq_i) in div_eq_idx.iter().enumerate() {
            let col = np_nd + d;
            let a = self.eqs[eq_i][col].unsigned_abs() as i64;
            // ¬(a | e): residues 1..a-1, each with its own witness.
            for r in 1..a {
                let mut piece = BasicSet::universe(self.space.clone());
                piece.n_div = 1;
                // Rebuild the defining row over [params|dims|q|const] with
                // the residue shifted into the constant.
                let src = &self.eqs[eq_i];
                let mut row = vec![0i64; np_nd + 2];
                row[..np_nd].copy_from_slice(&src[..np_nd]);
                row[np_nd] = src[col];
                row[np_nd + 1] = src[self.cols() - 1] - r * src[col].signum();
                // e + a·q(sign) shifted by residue: e = a q + r  with the
                // original orientation preserved.
                piece.eqs.push(row);
                out.push(piece);
            }
        }
        // D ∧ ¬C: negate the remaining (div-free) constraints one by one.
        let keep: Vec<Vec<i64>> = div_eq_idx.iter().map(|&i| self.eqs[i].clone()).collect();
        let rest_eqs: Vec<Vec<i64>> = self
            .eqs
            .iter()
            .enumerate()
            .filter(|(i, _)| !div_eq_idx.contains(i))
            .map(|(_, r)| r.clone())
            .collect();
        let shell = BasicSet {
            space: self.space.clone(),
            n_div: self.n_div,
            eqs: keep.clone(),
            ineqs: Vec::new(),
            emptiness: AtomicU8::new(EMPTINESS_UNKNOWN),
        };
        let cols = self.cols();
        // Negate each div-free constraint in turn (inequalities have zero
        // div coefficients by the classification above; rest_eqs touch
        // dims only).
        let mut pieces: Vec<(bool, Vec<i64>)> = Vec::new();
        for r in &rest_eqs {
            pieces.push((true, r.clone()));
        }
        for r in &self.ineqs {
            pieces.push((false, r.clone()));
        }
        let mut ctx = shell;
        for (is_eq, r) in pieces {
            if is_eq {
                let mut pos = r.clone();
                pos[cols - 1] -= 1;
                let mut b1 = ctx.clone();
                b1.push_ineq(pos);
                out.push(b1);
                let mut neg: Vec<i64> = r.iter().map(|&x| -x).collect();
                neg[cols - 1] -= 1;
                let mut b2 = ctx.clone();
                b2.push_ineq(neg);
                out.push(b2);
                ctx.eqs.push(r);
                *ctx.emptiness.get_mut() = EMPTINESS_UNKNOWN;
            } else {
                let mut neg: Vec<i64> = r.iter().map(|&x| -x).collect();
                neg[cols - 1] -= 1;
                let mut b = ctx.clone();
                b.push_ineq(neg);
                out.push(b);
                ctx.ineqs.push(r);
                *ctx.emptiness.get_mut() = EMPTINESS_UNKNOWN;
            }
        }
        Ok(out)
    }

    /// Replaces the space with a compatible one (same arities), e.g. to
    /// rename tuples.
    ///
    /// # Errors
    /// Returns an error if arities differ.
    pub fn cast(&self, space: Space) -> Result<BasicSet> {
        if space.n_param() != self.n_param() || space.n_dim() != self.n_dim() {
            return Err(Error::SpaceMismatch {
                op: "cast",
                lhs: self.space.to_string(),
                rhs: space.to_string(),
            });
        }
        let mut b = self.clone();
        b.space = space;
        Ok(b)
    }
}

/// One complement branch: extra equality rows and inequality rows.
pub(crate) type NegatedEntry = (Vec<Vec<i64>>, Vec<Vec<i64>>);

/// Evaluates row on `point` (vars beyond `point.len()` are divs, must be 0
/// coefficient — caller guarantees), returning coefficient·point + const.
fn row_eval(row: &[i64], point: &[i64], nv: usize) -> Result<i64> {
    let mut acc = row[row.len() - 1];
    for (c, v) in row[..nv].iter().zip(point.iter()) {
        acc = lin::add_mul(acc, *c, *v)?;
    }
    Ok(acc)
}

/// Drops dims `[first, first+count)` from a space's tuples.
pub(crate) fn drop_space_dims(space: &Space, first: usize, count: usize) -> Space {
    use crate::space::Tuple;
    let mut dims_seen = 0usize;
    let mut tuples = Vec::new();
    let all: Vec<&Tuple> = if space.is_map() {
        vec![space.in_tuple(), space.out_tuple()]
    } else {
        vec![space.tuple()]
    };
    for t in all {
        let keep: Vec<&str> = t
            .dims()
            .iter()
            .enumerate()
            .filter(|(i, _)| {
                let abs = dims_seen + i;
                !(first..first + count).contains(&abs)
            })
            .map(|(_, d)| d.as_str())
            .collect();
        tuples.push(Tuple::new(t.name(), &keep));
        dims_seen += t.arity();
    }
    let params: Vec<&str> = space.params().iter().map(String::as_str).collect();
    match tuples.len() {
        1 => Space::set(&params, tuples.pop().unwrap()),
        2 => {
            let out = tuples.pop().unwrap();
            let inp = tuples.pop().unwrap();
            Space::map(&params, inp, out)
        }
        _ => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aff::AffExpr;
    use crate::space::Tuple;

    fn sp2() -> Space {
        Space::set(&[], Tuple::new(Some("S"), &["i", "j"]))
    }

    /// `{ S[i,j] : 0 <= i <= a and 0 <= j <= b }`
    fn boxy(a: i64, b: i64) -> BasicSet {
        let sp = sp2();
        let i = AffExpr::dim(&sp, 0).unwrap();
        let j = AffExpr::dim(&sp, 1).unwrap();
        let zero = AffExpr::zero(&sp);
        let ca = AffExpr::constant(&sp, a);
        let cb = AffExpr::constant(&sp, b);
        BasicSet::universe(sp)
            .constrain(&i.ge(&zero).unwrap())
            .unwrap()
            .constrain(&i.le(&ca).unwrap())
            .unwrap()
            .constrain(&j.ge(&zero).unwrap())
            .unwrap()
            .constrain(&j.le(&cb).unwrap())
            .unwrap()
    }

    #[test]
    fn universe_and_empty() {
        let u = BasicSet::universe(sp2());
        assert!(!u.is_empty().unwrap());
        assert!(u.contains(&[100, -100]).unwrap());
        let e = BasicSet::empty(sp2());
        assert!(e.is_empty().unwrap());
        assert!(!e.contains(&[0, 0]).unwrap());
    }

    #[test]
    fn box_membership() {
        let b = boxy(3, 2);
        assert!(b.contains(&[0, 0]).unwrap());
        assert!(b.contains(&[3, 2]).unwrap());
        assert!(!b.contains(&[4, 0]).unwrap());
        assert!(!b.contains(&[0, -1]).unwrap());
        assert!(!b.is_empty().unwrap());
    }

    #[test]
    fn intersect_boxes() {
        let a = boxy(5, 5);
        let b = boxy(3, 7);
        let c = a.intersect(&b).unwrap();
        assert!(c.contains(&[3, 5]).unwrap());
        assert!(!c.contains(&[4, 5]).unwrap());
        assert!(!c.contains(&[3, 6]).unwrap());
    }

    #[test]
    fn empty_detection_via_omega() {
        let sp = sp2();
        let i = AffExpr::dim(&sp, 0).unwrap();
        // i >= 5 and i <= 4
        let b = BasicSet::universe(sp.clone())
            .constrain(&i.ge(&AffExpr::constant(&sp, 5)).unwrap())
            .unwrap()
            .constrain(&i.le(&AffExpr::constant(&sp, 4)).unwrap())
            .unwrap();
        assert!(b.is_empty().unwrap());
    }

    #[test]
    fn interval_precheck_agrees_with_omega() {
        // Disjoint boxes: the interval pre-check must prove emptiness.
        let lo = boxy(3, 3);
        let sp = sp2();
        let i = AffExpr::dim(&sp, 0).unwrap();
        let hi = BasicSet::universe(sp.clone())
            .constrain(&i.ge(&AffExpr::constant(&sp, 10)).unwrap())
            .unwrap();
        let meet = lo.intersect(&hi).unwrap();
        assert!(meet.interval_empty());
        assert!(meet.is_empty().unwrap());
        // Overlapping boxes: the pre-check must stay silent (unknown),
        // and the exact test must report non-empty.
        let meet2 = boxy(5, 5).intersect(&boxy(3, 7)).unwrap();
        assert!(!meet2.interval_empty());
        assert!(!meet2.is_empty().unwrap());
        // Unsatisfiable divisibility on an equality: 2i == 7 has no
        // integer solution; single-variable reasoning catches it.
        let two_i = AffExpr::dim(&sp, 0).unwrap().scale(2).unwrap();
        let odd = BasicSet::universe(sp.clone())
            .constrain(&two_i.eq(&AffExpr::constant(&sp, 7)).unwrap())
            .unwrap();
        assert!(odd.is_empty().unwrap());
        // A contradiction only visible through a multi-variable row is
        // beyond interval reasoning: pre-check says unknown, Omega decides.
        let j = AffExpr::dim(&sp, 1).unwrap();
        let sum = i.checked_add(&j).unwrap();
        let multi = boxy(2, 2)
            .constrain(&sum.ge(&AffExpr::constant(&sp, 100)).unwrap())
            .unwrap();
        assert!(!multi.interval_empty());
        assert!(multi.is_empty().unwrap());
    }

    #[test]
    fn project_out_dims_box() {
        let b = boxy(3, 7);
        let ps = b.project_out_dims(0, 1).unwrap();
        assert_eq!(ps.len(), 1);
        let p = &ps[0];
        assert_eq!(p.space().n_dim(), 1);
        assert!(p.contains(&[0]).unwrap());
        assert!(p.contains(&[7]).unwrap());
        assert!(!p.contains(&[8]).unwrap());
        // project the other dim
        let ps = b.project_out_dims(1, 1).unwrap();
        let p = &ps[0];
        assert!(p.contains(&[3]).unwrap());
        assert!(!p.contains(&[4]).unwrap());
    }

    #[test]
    fn project_all_dims_of_nonempty_is_universe_point() {
        let b = boxy(1, 1);
        let ps = b.project_out_dims(0, 2).unwrap();
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].space().n_dim(), 0);
        assert!(!ps[0].is_empty().unwrap());
    }

    #[test]
    fn fix_dim_slices() {
        let b = boxy(3, 2);
        let s = b.fix_dim(0, 2).unwrap();
        assert!(s.contains(&[2, 1]).unwrap());
        assert!(!s.contains(&[1, 1]).unwrap());
        let s = b.fix_dim(0, 9).unwrap();
        assert!(s.is_empty().unwrap());
        assert!(b.fix_dim(5, 0).is_err());
    }

    #[test]
    fn fix_param_works() {
        let sp = Space::set(&["N"], Tuple::new(Some("S"), &["i"]));
        let i = AffExpr::dim(&sp, 0).unwrap();
        let n = AffExpr::param(&sp, 0).unwrap();
        let b = BasicSet::universe(sp.clone())
            .constrain(&i.ge(&AffExpr::zero(&sp)).unwrap())
            .unwrap()
            .constrain(&i.lt(&n).unwrap())
            .unwrap();
        let f = b.fix_param(0, 3).unwrap();
        assert!(f.contains(&[3, 2]).unwrap());
        assert!(!f.contains(&[3, 3]).unwrap());
        // fixing with inconsistent param value makes membership false
        assert!(!f.contains(&[4, 2]).unwrap());
    }

    #[test]
    fn simplify_removes_duplicates_and_uses_equalities() {
        let sp = sp2();
        let i = AffExpr::dim(&sp, 0).unwrap();
        let j = AffExpr::dim(&sp, 1).unwrap();
        let mut b = BasicSet::universe(sp.clone());
        b.add_constraint(&i.eq(&j).unwrap()).unwrap();
        b.add_constraint(&i.ge(&AffExpr::zero(&sp)).unwrap())
            .unwrap();
        b.add_constraint(&i.ge(&AffExpr::zero(&sp)).unwrap())
            .unwrap();
        let before = b.n_constraint();
        b.simplify();
        assert!(b.n_constraint() < before);
        assert!(b.contains(&[2, 2]).unwrap());
        assert!(!b.contains(&[2, 3]).unwrap());
        assert!(!b.contains(&[-1, -1]).unwrap());
    }

    #[test]
    fn cast_renames_tuple() {
        let b = boxy(1, 1);
        let sp = Space::set(&[], Tuple::new(Some("T"), &["x", "y"]));
        let c = b.cast(sp).unwrap();
        assert_eq!(c.space().tuple().name(), Some("T"));
        // arity mismatch rejected
        let bad = Space::set(&[], Tuple::new(Some("T"), &["x"]));
        assert!(b.cast(bad).is_err());
    }

    #[test]
    fn drop_space_dims_helper() {
        let sp = Space::map(
            &["N"],
            Tuple::new(Some("S"), &["i", "j"]),
            Tuple::new(Some("A"), &["a"]),
        );
        let d = drop_space_dims(&sp, 1, 1);
        assert_eq!(d.to_string(), "[N] -> { S[i] -> A[a] }");
        let d = drop_space_dims(&sp, 2, 1);
        assert_eq!(d.to_string(), "[N] -> { S[i, j] -> A[] }");
    }

    #[test]
    fn complement_pieces_cover_exactly() {
        // Complement of a 2-D box, checked pointwise.
        let b = boxy(2, 3);
        let pieces = b.complement_pieces().unwrap();
        assert!(!pieces.is_empty());
        for i in -2..6 {
            for j in -2..7 {
                let inside = b.contains(&[i, j]).unwrap();
                let in_complement = pieces.iter().any(|p| p.contains(&[i, j]).unwrap());
                assert_eq!(inside, !in_complement, "({i},{j})");
            }
        }
        // The pieces are pairwise disjoint (disjoint decomposition).
        for (x, a) in pieces.iter().enumerate() {
            for b2 in pieces.iter().skip(x + 1) {
                assert!(a.intersect(b2).unwrap().is_empty().unwrap());
            }
        }
    }

    #[test]
    fn complement_of_universe_is_empty() {
        let u = BasicSet::universe(sp2());
        let pieces = u.complement_pieces().unwrap();
        for p in pieces {
            assert!(p.is_empty().unwrap());
        }
    }

    #[test]
    fn projection_with_stride_keeps_exactness() {
        // { S[i, j] : i = 3j } projected on i => multiples of 3.
        let sp = sp2();
        let i = AffExpr::dim(&sp, 0).unwrap();
        let j = AffExpr::dim(&sp, 1).unwrap();
        let b = BasicSet::universe(sp.clone())
            .constrain(&i.eq(&j.scale(3).unwrap()).unwrap())
            .unwrap()
            .constrain(&j.ge(&AffExpr::zero(&sp)).unwrap())
            .unwrap()
            .constrain(&j.le(&AffExpr::constant(&sp, 3)).unwrap())
            .unwrap();
        let ps = b.project_out_dims(1, 1).unwrap();
        let contains = |v: i64| ps.iter().any(|p| p.contains(&[v]).unwrap());
        for v in -1..11 {
            assert_eq!(contains(v), (0..=9).contains(&v) && v % 3 == 0, "v = {v}");
        }
    }
}
