//! Spaces: the typed universes that sets and maps live in.
//!
//! A [`Space`] records the symbolic parameters (e.g. problem sizes `H`, `W`)
//! and one tuple (for a set) or two tuples (for a map, input and output). A
//! [`Tuple`] has an optional name — statement names like `S0` or array names
//! like `A` — and named dimensions.

use crate::error::{Error, Result};
use std::fmt;

/// A named tuple of dimensions, such as `S0[h, w]` or `A[i, j]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple {
    name: Option<String>,
    dims: Vec<String>,
}

impl Tuple {
    /// Creates a tuple with the given name and dimension names.
    pub fn new(name: Option<&str>, dims: &[&str]) -> Self {
        Tuple {
            name: name.map(str::to_owned),
            dims: dims.iter().map(|s| (*s).to_owned()).collect(),
        }
    }

    /// Creates an anonymous tuple with `n` dimensions named `i0..i{n-1}`.
    pub fn anonymous(n: usize) -> Self {
        Tuple {
            name: None,
            dims: (0..n).map(|i| format!("i{i}")).collect(),
        }
    }

    /// Creates a named tuple with `n` dimensions named `i0..i{n-1}`.
    pub fn named(name: &str, n: usize) -> Self {
        Tuple {
            name: Some(name.to_owned()),
            dims: (0..n).map(|i| format!("i{i}")).collect(),
        }
    }

    /// The tuple's name, if any.
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// Number of dimensions.
    pub fn arity(&self) -> usize {
        self.dims.len()
    }

    /// Dimension names.
    pub fn dims(&self) -> &[String] {
        &self.dims
    }

    /// Whether two tuples are structurally compatible: same name and arity.
    /// Dimension *names* are cosmetic and do not affect compatibility.
    pub fn compatible(&self, other: &Tuple) -> bool {
        self.name == other.name && self.dims.len() == other.dims.len()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(name) = &self.name {
            write!(f, "{name}")?;
        }
        write!(f, "[{}]", self.dims.join(", "))
    }
}

/// The space of a set (one tuple) or map (two tuples) plus its parameters.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Space {
    params: Vec<String>,
    tuples: Vec<Tuple>,
}

impl Space {
    /// Creates a set space over `params` with one tuple.
    pub fn set(params: &[&str], tuple: Tuple) -> Self {
        Space {
            params: params.iter().map(|s| (*s).to_owned()).collect(),
            tuples: vec![tuple],
        }
    }

    /// Creates a map space over `params` with input and output tuples.
    pub fn map(params: &[&str], input: Tuple, output: Tuple) -> Self {
        Space {
            params: params.iter().map(|s| (*s).to_owned()).collect(),
            tuples: vec![input, output],
        }
    }

    pub(crate) fn from_parts(params: Vec<String>, tuples: Vec<Tuple>) -> Self {
        debug_assert!(tuples.len() == 1 || tuples.len() == 2);
        Space { params, tuples }
    }

    /// Whether this is a set space (exactly one tuple).
    pub fn is_set(&self) -> bool {
        self.tuples.len() == 1
    }

    /// Whether this is a map space (two tuples).
    pub fn is_map(&self) -> bool {
        self.tuples.len() == 2
    }

    /// The parameter names.
    pub fn params(&self) -> &[String] {
        &self.params
    }

    /// Number of parameters.
    pub fn n_param(&self) -> usize {
        self.params.len()
    }

    /// Total number of tuple dimensions (input + output for a map).
    pub fn n_dim(&self) -> usize {
        self.tuples.iter().map(Tuple::arity).sum()
    }

    /// Number of input dimensions (0 for a set).
    pub fn n_in(&self) -> usize {
        if self.is_map() {
            self.tuples[0].arity()
        } else {
            0
        }
    }

    /// Number of output dimensions (= set arity for a set).
    pub fn n_out(&self) -> usize {
        self.tuples.last().map_or(0, Tuple::arity)
    }

    /// The single tuple of a set space.
    ///
    /// # Panics
    /// Panics if this is a map space.
    pub fn tuple(&self) -> &Tuple {
        assert!(self.is_set(), "tuple() called on a map space");
        &self.tuples[0]
    }

    /// The input tuple of a map space.
    ///
    /// # Panics
    /// Panics if this is a set space.
    pub fn in_tuple(&self) -> &Tuple {
        assert!(self.is_map(), "in_tuple() called on a set space");
        &self.tuples[0]
    }

    /// The output tuple of a map space (or the set tuple of a set space).
    pub fn out_tuple(&self) -> &Tuple {
        self.tuples.last().expect("space has at least one tuple")
    }

    /// Whether two spaces are compatible for algebra: same parameters and
    /// structurally compatible tuples.
    pub fn compatible(&self, other: &Space) -> bool {
        self.params == other.params
            && self.tuples.len() == other.tuples.len()
            && self
                .tuples
                .iter()
                .zip(other.tuples.iter())
                .all(|(a, b)| a.compatible(b))
    }

    /// Returns an error if `self` and `other` are incompatible for `op`.
    pub(crate) fn check_compatible(&self, other: &Space, op: &'static str) -> Result<()> {
        if self.compatible(other) {
            Ok(())
        } else {
            Err(Error::SpaceMismatch {
                op,
                lhs: self.to_string(),
                rhs: other.to_string(),
            })
        }
    }

    /// The map space `out -> in` (swapped tuples).
    ///
    /// # Panics
    /// Panics if this is a set space.
    pub fn reversed(&self) -> Space {
        assert!(self.is_map(), "reversed() requires a map space");
        Space {
            params: self.params.clone(),
            tuples: vec![self.tuples[1].clone(), self.tuples[0].clone()],
        }
    }

    /// The set space of a map's input tuple.
    pub fn domain_space(&self) -> Space {
        assert!(self.is_map(), "domain_space() requires a map space");
        Space {
            params: self.params.clone(),
            tuples: vec![self.tuples[0].clone()],
        }
    }

    /// The set space of a map's output tuple (identity for a set space).
    pub fn range_space(&self) -> Space {
        Space {
            params: self.params.clone(),
            tuples: vec![self.tuples.last().unwrap().clone()],
        }
    }

    /// The map space `self.tuple -> other.tuple` built from two set spaces.
    pub fn join_map(&self, other: &Space) -> Result<Space> {
        if !self.is_set() || !other.is_set() {
            return Err(Error::KindMismatch { expected: "set" });
        }
        if self.params != other.params {
            return Err(Error::SpaceMismatch {
                op: "join_map",
                lhs: self.to_string(),
                rhs: other.to_string(),
            });
        }
        Ok(Space {
            params: self.params.clone(),
            tuples: vec![self.tuples[0].clone(), other.tuples[0].clone()],
        })
    }

    /// Name of the column at absolute variable index `i` (params first, then
    /// tuple dims). Used for printing.
    pub(crate) fn var_name(&self, i: usize) -> &str {
        if i < self.params.len() {
            &self.params[i]
        } else {
            let mut j = i - self.params.len();
            for t in &self.tuples {
                if j < t.arity() {
                    return &t.dims[j];
                }
                j -= t.arity();
            }
            unreachable!("var index out of range")
        }
    }
}

impl fmt::Display for Space {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.params.is_empty() {
            write!(f, "[{}] -> ", self.params.join(", "))?;
        }
        write!(f, "{{ ")?;
        match self.tuples.as_slice() {
            [t] => write!(f, "{t}")?,
            [a, b] => write!(f, "{a} -> {b}")?,
            _ => unreachable!(),
        }
        write!(f, " }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_space_basics() {
        let s = Space::set(&["N"], Tuple::new(Some("S0"), &["i", "j"]));
        assert!(s.is_set());
        assert!(!s.is_map());
        assert_eq!(s.n_param(), 1);
        assert_eq!(s.n_dim(), 2);
        assert_eq!(s.n_in(), 0);
        assert_eq!(s.n_out(), 2);
        assert_eq!(s.tuple().name(), Some("S0"));
        assert_eq!(s.to_string(), "[N] -> { S0[i, j] }");
    }

    #[test]
    fn map_space_basics() {
        let m = Space::map(
            &[],
            Tuple::new(Some("S"), &["i"]),
            Tuple::new(Some("A"), &["a", "b"]),
        );
        assert!(m.is_map());
        assert_eq!(m.n_in(), 1);
        assert_eq!(m.n_out(), 2);
        assert_eq!(m.n_dim(), 3);
        assert_eq!(m.to_string(), "{ S[i] -> A[a, b] }");
        let r = m.reversed();
        assert_eq!(r.to_string(), "{ A[a, b] -> S[i] }");
        assert_eq!(m.domain_space().to_string(), "{ S[i] }");
        assert_eq!(m.range_space().to_string(), "{ A[a, b] }");
    }

    #[test]
    fn compatibility_ignores_dim_names() {
        let a = Space::set(&["N"], Tuple::new(Some("S"), &["i"]));
        let b = Space::set(&["N"], Tuple::new(Some("S"), &["x"]));
        assert!(a.compatible(&b));
        let c = Space::set(&["N"], Tuple::new(Some("T"), &["i"]));
        assert!(!a.compatible(&c));
        let d = Space::set(&["M"], Tuple::new(Some("S"), &["i"]));
        assert!(!a.compatible(&d));
    }

    #[test]
    fn join_map_builds_map_space() {
        let a = Space::set(&["N"], Tuple::new(Some("S"), &["i"]));
        let b = Space::set(&["N"], Tuple::new(Some("A"), &["x"]));
        let m = a.join_map(&b).unwrap();
        assert_eq!(m.to_string(), "[N] -> { S[i] -> A[x] }");
    }

    #[test]
    fn join_map_rejects_mismatched_params() {
        let a = Space::set(&["N"], Tuple::new(Some("S"), &["i"]));
        let b = Space::set(&["M"], Tuple::new(Some("A"), &["x"]));
        assert!(a.join_map(&b).is_err());
    }

    #[test]
    fn var_name_walks_params_then_tuples() {
        let m = Space::map(
            &["N"],
            Tuple::new(Some("S"), &["i"]),
            Tuple::new(Some("A"), &["a"]),
        );
        assert_eq!(m.var_name(0), "N");
        assert_eq!(m.var_name(1), "i");
        assert_eq!(m.var_name(2), "a");
    }

    #[test]
    fn anonymous_and_named_constructors() {
        let t = Tuple::anonymous(3);
        assert_eq!(t.arity(), 3);
        assert_eq!(t.name(), None);
        assert_eq!(t.dims(), &["i0", "i1", "i2"]);
        let n = Tuple::named("S9", 2);
        assert_eq!(n.name(), Some("S9"));
        assert_eq!(n.to_string(), "S9[i0, i1]");
    }
}
