//! Lexicographic point enumeration of bounded sets.
//!
//! A [`Scanner`] precomputes, per disjunct and per dimension, the constraint
//! rows that bound that dimension in terms of the parameters and outer
//! dimensions. Enumeration then walks the dimensions like nested loops —
//! exactly the structure a polyhedral code generator emits, which is why the
//! per-level [`LoopBounds`] are public: the `codegen` crate prints them as
//! `for` loop bounds.
//!
//! The per-level bounds are computed with a cheap over-approximating
//! elimination (real-shadow Fourier–Motzkin); every *complete* candidate
//! point is verified with the exact membership test, so enumeration is
//! exact. The over-approximation only costs a few wasted boundary probes.

use crate::bset::BasicSet;
use crate::error::{Error, Result};
use crate::lin;
use crate::set::Set;
use std::collections::BTreeSet;

/// Bounds for one loop level: `max(lowers) <= x <= min(uppers)`.
///
/// Each entry is `(coeff, row)` where `coeff > 0` and `row` spans
/// `[params | dims | const]` with zero coefficients on this dimension and
/// all deeper dimensions:
/// * a lower bound reads `x >= ceil(-eval(row) / coeff)`,
/// * an upper bound reads `x <= floor(eval(row) / coeff)`.
#[derive(Debug, Clone, Default)]
pub struct LoopBounds {
    /// Lower-bound rows.
    pub lowers: Vec<(i64, Vec<i64>)>,
    /// Upper-bound rows.
    pub uppers: Vec<(i64, Vec<i64>)>,
}

/// Alias kept for documentation symmetry with the paper's terminology.
pub type ScanLevel = LoopBounds;

/// One scannable disjunct: bounds per level plus the exact membership
/// checker.
#[derive(Debug, Clone)]
struct Branch {
    levels: Vec<LoopBounds>,
    exact: BasicSet,
}

/// Enumerates the integer points of a bounded [`Set`] for fixed parameter
/// values, in lexicographic order (per disjunct; unions are merged and
/// deduplicated).
#[derive(Debug, Clone)]
pub struct Scanner {
    n_param: usize,
    n_dim: usize,
    param_values: Vec<i64>,
    branches: Vec<Branch>,
}

impl Scanner {
    /// Builds a scanner for `set` with concrete `param_values`.
    ///
    /// # Errors
    /// Returns an error if the number of parameter values is wrong or on
    /// overflow during bound precomputation.
    pub fn new(set: &Set, param_values: &[i64]) -> Result<Self> {
        if param_values.len() != set.space().n_param() {
            return Err(Error::DimOutOfBounds {
                index: param_values.len(),
                len: set.space().n_param(),
            });
        }
        Self::build(set, param_values.to_vec())
    }

    /// Builds a scanner whose per-level [`LoopBounds`] are symbolic in the
    /// parameters (for code generation). Enumeration methods must not be
    /// called on it unless the set has no parameters.
    ///
    /// # Errors
    /// Returns an error on overflow during bound precomputation.
    pub fn symbolic(set: &Set) -> Result<Self> {
        Self::build(set, Vec::new())
    }

    fn build(set: &Set, param_values: Vec<i64>) -> Result<Self> {
        let n_param = set.space().n_param();
        let n_dim = set.space().n_dim();
        let mut branches = Vec::new();
        for b in set.basics() {
            if b.is_empty()? {
                continue;
            }
            branches.push(Branch {
                levels: levels_for(b)?,
                exact: b.clone(),
            });
        }
        Ok(Scanner {
            n_param,
            n_dim,
            param_values,
            branches,
        })
    }

    /// Number of disjunct branches.
    pub fn n_branch(&self) -> usize {
        self.branches.len()
    }

    /// The per-level loop bounds of branch `i` (outermost first).
    pub fn branch_bounds(&self, i: usize) -> &[LoopBounds] {
        &self.branches[i].levels
    }

    /// The exact basic set of branch `i` — the membership test that makes
    /// enumeration exact. For a branch without existential divs the
    /// per-level bounds are already exact (every original constraint row is
    /// recorded at its deepest dimension, and real-shadow FM only *adds*
    /// implied rows), so consumers compiling the bounds into loops — the
    /// bytecode lowering in `codegen` — need the leaf membership test only
    /// when [`BasicSet::n_div`] is nonzero.
    pub fn branch_exact(&self, i: usize) -> &BasicSet {
        &self.branches[i].exact
    }

    /// Invokes `f` on every point (as `&[i64]` of length `n_dim`) in the
    /// set; `f` returns `false` to stop early. Points from unions are
    /// deduplicated.
    ///
    /// # Errors
    /// Returns [`Error::Unbounded`] if some dimension has no finite bound,
    /// or an overflow error.
    pub fn for_each(&self, f: &mut dyn FnMut(&[i64]) -> bool) -> Result<()> {
        assert_eq!(
            self.param_values.len(),
            self.n_param,
            "cannot enumerate a symbolic scanner with parameters"
        );
        if self.branches.len() == 1 {
            let mut point = vec![0i64; self.n_param + self.n_dim];
            point[..self.n_param].copy_from_slice(&self.param_values);
            self.walk(&self.branches[0], 0, &mut point, f)?;
            return Ok(());
        }
        // Union: collect + dedup to keep `f` single-visit semantics.
        let mut seen: BTreeSet<Vec<i64>> = BTreeSet::new();
        for br in &self.branches {
            let mut point = vec![0i64; self.n_param + self.n_dim];
            point[..self.n_param].copy_from_slice(&self.param_values);
            self.walk(br, 0, &mut point, &mut |p: &[i64]| {
                seen.insert(p.to_vec());
                true
            })?;
        }
        for p in &seen {
            if !f(p) {
                break;
            }
        }
        Ok(())
    }

    /// Counts the points of the set.
    ///
    /// # Errors
    /// See [`Scanner::for_each`].
    pub fn count(&self) -> Result<u64> {
        let mut n = 0u64;
        self.for_each(&mut |_| {
            n += 1;
            true
        })?;
        Ok(n)
    }

    /// Collects all points into a vector (dims only, parameters stripped).
    ///
    /// # Errors
    /// See [`Scanner::for_each`].
    pub fn points(&self) -> Result<Vec<Vec<i64>>> {
        let mut out = Vec::new();
        self.for_each(&mut |p| {
            out.push(p.to_vec());
            true
        })?;
        Ok(out)
    }

    fn walk(
        &self,
        br: &Branch,
        level: usize,
        point: &mut Vec<i64>,
        f: &mut dyn FnMut(&[i64]) -> bool,
    ) -> Result<bool> {
        if level == self.n_dim {
            let dims = &point[self.n_param..];
            let full: Vec<i64> = self
                .param_values
                .iter()
                .chain(dims.iter())
                .copied()
                .collect();
            if br.exact.contains(&full)? {
                return Ok(f(dims));
            }
            return Ok(true);
        }
        let lb = &br.levels[level];
        let Some((lo, hi)) = eval_bounds(lb, point, level)? else {
            return Ok(true); // empty range under this prefix
        };
        for v in lo..=hi {
            point[self.n_param + level] = v;
            if !self.walk(br, level + 1, point, f)? {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

/// Evaluates the numeric `[lo, hi]` range of a level given the outer prefix
/// (params + outer dims filled in `point`). Returns `None` for an empty
/// range and `Err(Unbounded)` when a direction has no bound.
pub(crate) fn eval_bounds(
    lb: &LoopBounds,
    point: &[i64],
    level: usize,
) -> Result<Option<(i64, i64)>> {
    if lb.lowers.is_empty() || lb.uppers.is_empty() {
        return Err(Error::Unbounded { dim: level });
    }
    let mut lo = i64::MIN;
    for (a, row) in &lb.lowers {
        let e = eval_prefix(row, point)?;
        lo = lo.max(lin::cdiv(-e, *a));
    }
    let mut hi = i64::MAX;
    for (b, row) in &lb.uppers {
        let e = eval_prefix(row, point)?;
        hi = hi.min(lin::fdiv(e, *b));
    }
    Ok(if lo <= hi { Some((lo, hi)) } else { None })
}

/// Evaluates a row over `[params | dims | const]` at a partially-filled
/// point (unfilled trailing dims are guaranteed zero-coefficient).
fn eval_prefix(row: &[i64], point: &[i64]) -> Result<i64> {
    let mut acc = row[row.len() - 1];
    for (c, v) in row[..row.len() - 1].iter().zip(point.iter()) {
        if *c != 0 {
            acc = lin::add_mul(acc, *c, *v)?;
        }
    }
    // Any nonzero coefficients beyond the filled prefix would be a logic
    // error in level construction.
    debug_assert!(row[point.len()..row.len() - 1].iter().all(|&c| c == 0));
    Ok(acc)
}

/// Computes per-level bounds for one basic set by over-approximating
/// elimination of divs and inner dimensions (real-shadow FM; equalities are
/// treated as inequality pairs for bound extraction).
fn levels_for(b: &BasicSet) -> Result<Vec<LoopBounds>> {
    let n_param = b.space().n_param();
    let n_dim = b.space().n_dim();
    let n_div = b.n_div();
    let width = n_param + n_dim + n_div + 1;
    // Collect all constraints as inequalities.
    let mut rows: Vec<Vec<i64>> = Vec::new();
    for r in b.ineq_rows() {
        rows.push(r.clone());
    }
    for r in b.eq_rows() {
        rows.push(r.clone());
        rows.push(r.iter().map(|&x| -x).collect());
    }
    debug_assert!(rows.iter().all(|r| r.len() == width));
    // Eliminate div columns (innermost first); widths are kept, columns are
    // only zeroed.
    for col in (n_param + n_dim..width - 1).rev() {
        rows = fm_real_shadow(rows, col);
    }
    // Record bounds per dimension, innermost first, eliminating as we go.
    let mut levels = vec![LoopBounds::default(); n_dim];
    for k in (0..n_dim).rev() {
        let col = n_param + k;
        let mut bounds = LoopBounds::default();
        for r in &rows {
            let c = r[col];
            if c == 0 {
                continue;
            }
            // Squeeze to [params | dims | const], zeroing this column.
            let mut row = vec![0i64; n_param + n_dim + 1];
            row[..n_param + n_dim].copy_from_slice(&r[..n_param + n_dim]);
            row[col] = 0;
            row[n_param + n_dim] = r[width - 1];
            if c > 0 {
                bounds.lowers.push((c, row));
            } else {
                bounds.uppers.push((-c, row));
            }
        }
        levels[k] = bounds;
        rows = fm_real_shadow(rows, col);
    }
    Ok(levels)
}

fn fm_real_shadow(rows: Vec<Vec<i64>>, col: usize) -> Vec<Vec<i64>> {
    let mut lowers = Vec::new();
    let mut uppers = Vec::new();
    let mut rest = Vec::new();
    for r in rows {
        if r[col] > 0 {
            lowers.push(r);
        } else if r[col] < 0 {
            uppers.push(r);
        } else {
            rest.push(r);
        }
    }
    if lowers.is_empty() || uppers.is_empty() {
        // Unbounded in one direction: drop all constraints on this column.
        return prune_rows(rest);
    }
    for lo in &lowers {
        let a = lo[col];
        for up in &uppers {
            let bq = -up[col];
            if let Ok(mut row) = lin::row_combine(bq, lo, a, up) {
                row[col] = 0;
                lin::normalize_ineq_row(&mut row);
                rest.push(row);
            }
        }
    }
    prune_rows(rest)
}

/// Deduplicates rows and keeps, per coefficient vector, only the tightest
/// inequality — without this, successive eliminations square the row count
/// (OOM on deep loop nests). Over-approximation is preserved: dropped rows
/// are all implied by the kept one.
fn prune_rows(mut rows: Vec<Vec<i64>>) -> Vec<Vec<i64>> {
    rows.sort();
    // After sorting, rows with equal coefficient prefixes are adjacent and
    // the first has the smallest (tightest) constant.
    rows.dedup_by(|a, b| {
        let n = a.len() - 1;
        a[..n] == b[..n]
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set::Set;

    fn set(s: &str) -> Set {
        s.parse().unwrap()
    }

    #[test]
    fn scan_box() {
        let s = set("{ S[i,j] : 0 <= i <= 2 and 0 <= j <= 1 }");
        let sc = Scanner::new(&s, &[]).unwrap();
        let pts = sc.points().unwrap();
        assert_eq!(
            pts,
            vec![
                vec![0, 0],
                vec![0, 1],
                vec![1, 0],
                vec![1, 1],
                vec![2, 0],
                vec![2, 1]
            ]
        );
        assert_eq!(sc.count().unwrap(), 6);
    }

    #[test]
    fn scan_triangle() {
        let s = set("{ S[i,j] : 0 <= i <= 3 and 0 <= j <= i }");
        let sc = Scanner::new(&s, &[]).unwrap();
        assert_eq!(sc.count().unwrap(), 4 + 3 + 2 + 1);
    }

    #[test]
    fn scan_with_params() {
        let s = set("[N] -> { S[i] : 0 <= i < N }");
        let sc = Scanner::new(&s, &[5]).unwrap();
        assert_eq!(sc.count().unwrap(), 5);
        let sc = Scanner::new(&s, &[0]).unwrap();
        assert_eq!(sc.count().unwrap(), 0);
    }

    #[test]
    fn scan_union_dedups() {
        let s = set("{ S[i] : 0 <= i <= 4; S[i] : 3 <= i <= 6 }");
        let sc = Scanner::new(&s, &[]).unwrap();
        assert_eq!(sc.count().unwrap(), 7);
    }

    #[test]
    fn scan_unbounded_errors() {
        let s = set("{ S[i] : i >= 0 }");
        let sc = Scanner::new(&s, &[]).unwrap();
        assert!(matches!(sc.count(), Err(Error::Unbounded { dim: 0 })));
    }

    #[test]
    fn scan_empty_is_zero() {
        let s = set("{ S[i] : 0 <= i and i <= -1 }");
        let sc = Scanner::new(&s, &[]).unwrap();
        assert_eq!(sc.count().unwrap(), 0);
    }

    #[test]
    fn early_stop() {
        let s = set("{ S[i] : 0 <= i <= 99 }");
        let sc = Scanner::new(&s, &[]).unwrap();
        let mut n = 0;
        sc.for_each(&mut |_| {
            n += 1;
            n < 10
        })
        .unwrap();
        assert_eq!(n, 10);
    }

    #[test]
    fn wrong_param_count_rejected() {
        let s = set("[N] -> { S[i] : 0 <= i < N }");
        assert!(Scanner::new(&s, &[]).is_err());
    }

    #[test]
    fn equality_pins_dimension() {
        let s = set("{ S[i,j] : i = 2j and 0 <= j <= 3 }");
        let sc = Scanner::new(&s, &[]).unwrap();
        let pts = sc.points().unwrap();
        assert_eq!(pts, vec![vec![0, 0], vec![2, 1], vec![4, 2], vec![6, 3]]);
    }

    #[test]
    fn symbolic_scanner_exposes_bounds() {
        let s = set("[N] -> { S[i] : 0 <= i < N }");
        let sc = Scanner::symbolic(&s).unwrap();
        assert_eq!(sc.n_branch(), 1);
        let lv = sc.branch_bounds(0);
        assert_eq!(lv.len(), 1);
        assert_eq!(lv[0].lowers.len(), 1);
        assert_eq!(lv[0].uppers.len(), 1);
    }
}
