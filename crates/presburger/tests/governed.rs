//! Behavior of the set algebra under an installed resource governor.
//!
//! Soundness contract under budgets: capped feasibility only ever
//! over-approximates (reports "maybe non-empty"), capped answers never
//! enter the memo, and hard budget exhaustion surfaces as the typed
//! `Error::BudgetExhausted`, never a panic or a wrong answer.
//!
//! Governors are thread-local, so each test runs isolated on its own test
//! thread — but the memo table is process-global, so every test uses
//! *distinct* constraint systems to avoid cross-test cache hits.

use tilefuse_presburger::{stats, Error, Set};
use tilefuse_trace::governor::{self, Budget};

/// An empty set whose proof needs several Omega elimination steps: the
/// non-unit equality `3i + 5j = c` passes the gcd test (gcd 1 divides
/// anything) and involves two variables, so neither row normalization nor
/// the interval pre-check can decide it — only branching elimination can.
/// `c` must not be representable as `3a + 5b` with `0 <= a, b` (e.g. 1, 2,
/// 4, 7); vary `hi` per test so memo keys differ across tests.
fn slow_empty_set(c: i64, hi: i64) -> Set {
    format!("{{ S[i,j] : 0 <= i <= {hi} and 0 <= j <= {hi} and 3 i + 5 j = {c} }}")
        .parse()
        .expect("literal parses")
}

#[test]
fn branch_cap_gives_conservative_uncached_answer() {
    let before = stats::silent_feasible();
    let capped = {
        let budget = Budget {
            max_branches_per_call: Some(1),
            ..Budget::default()
        };
        let _g = governor::install(&budget);
        slow_empty_set(1, 10)
            .is_empty()
            .expect("capped emptiness never errors")
    };
    // Conservative direction only: "not empty".
    assert!(!capped, "branch cap must over-approximate to non-empty");
    assert!(
        stats::silent_feasible() > before,
        "the fallback must be counted, not silent"
    );
    // The capped answer must not have been memoized: an ungoverned re-run
    // on a fresh object recomputes and gets the exact answer.
    assert!(
        slow_empty_set(1, 10)
            .is_empty()
            .expect("exact emptiness after capped run"),
        "capped result leaked into the memo table"
    );
}

#[test]
fn omega_op_budget_surfaces_as_typed_error() {
    let budget = Budget {
        max_omega_ops: Some(0),
        ..Budget::default()
    };
    let _g = governor::install(&budget);
    let err = slow_empty_set(2, 11)
        .is_empty()
        .expect_err("zero op budget must exhaust");
    assert!(err.is_budget_exhausted(), "got {err:?}");
    assert!(matches!(
        err,
        Error::BudgetExhausted {
            limit: "omega-ops",
            ..
        }
    ));
}

#[test]
fn unlimited_governor_changes_nothing() {
    let _g = governor::install(&Budget::unlimited());
    assert!(slow_empty_set(4, 12)
        .is_empty()
        .expect("unlimited governor is transparent"));
    assert!(governor::consumed().omega_ops > 0, "accounting still runs");
}

#[test]
fn intern_cap_bounds_cache_and_preserves_answers() {
    let budget = Budget {
        max_interned_rows: Some(4),
        ..Budget::default()
    };
    let _g = governor::install(&budget);
    for k in 0..32 {
        // Two-variable rows so the interval pre-check cannot short-circuit
        // before the memo (and its interner) is reached.
        let s: Set = format!("{{ S[i,j] : 0 <= i <= {k} and j = i and j >= {} }}", k + 1)
            .parse()
            .expect("literal parses");
        assert!(s.is_empty().expect("emptiness"), "k={k}");
    }
}
