//! Property-based tests of the set/map algebra.
//!
//! The Omega-test implementation is compared against brute-force
//! enumeration on bounded random systems, and the algebra is checked
//! against its laws.

use proptest::prelude::*;
use tilefuse_presburger::{AffExpr, BasicSet, Map, Set, Space, Tuple};

/// A random bounded basic set over two dims: a box plus `extra` random
/// affine inequalities.
fn random_set(
    ilo: i64,
    ihi: i64,
    jlo: i64,
    jhi: i64,
    extra: &[(i64, i64, i64)],
) -> BasicSet {
    let sp = Space::set(&[], Tuple::new(Some("S"), &["i", "j"]));
    let i = AffExpr::dim(&sp, 0).unwrap();
    let j = AffExpr::dim(&sp, 1).unwrap();
    let mut b = BasicSet::universe(sp.clone());
    b.add_constraint(&i.ge(&AffExpr::constant(&sp, ilo.min(ihi))).unwrap()).unwrap();
    b.add_constraint(&i.le(&AffExpr::constant(&sp, ilo.max(ihi))).unwrap()).unwrap();
    b.add_constraint(&j.ge(&AffExpr::constant(&sp, jlo.min(jhi))).unwrap()).unwrap();
    b.add_constraint(&j.le(&AffExpr::constant(&sp, jlo.max(jhi))).unwrap()).unwrap();
    for &(a, c, k) in extra {
        // a*i + c*j + k >= 0
        let e = AffExpr::zero(&sp)
            .with_dim_coeff(0, a)
            .with_dim_coeff(1, c)
            .with_constant(k);
        b.add_constraint(&e.ge_zero()).unwrap();
    }
    b
}

fn brute_points(b: &BasicSet, lo: i64, hi: i64) -> Vec<(i64, i64)> {
    let mut out = Vec::new();
    for i in lo..=hi {
        for j in lo..=hi {
            if b.contains(&[i, j]).unwrap() {
                out.push((i, j));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn emptiness_matches_brute_force(
        ilo in -6i64..6, ihi in -6i64..6, jlo in -6i64..6, jhi in -6i64..6,
        extra in prop::collection::vec((-3i64..4, -3i64..4, -6i64..7), 0..3),
    ) {
        let b = random_set(ilo, ihi, jlo, jhi, &extra);
        let brute = brute_points(&b, -8, 8);
        prop_assert_eq!(b.is_empty().unwrap(), brute.is_empty());
    }

    #[test]
    fn projection_is_exact(
        ilo in -5i64..5, ihi in -5i64..5, jlo in -5i64..5, jhi in -5i64..5,
        extra in prop::collection::vec((-3i64..4, -3i64..4, -6i64..7), 0..2),
    ) {
        let b = random_set(ilo, ihi, jlo, jhi, &extra);
        let brute = brute_points(&b, -8, 8);
        let projected = Set::from_basic(b).project_out_dims(1, 1).unwrap();
        for i in -8..=8 {
            let expect = brute.iter().any(|&(bi, _)| bi == i);
            prop_assert_eq!(projected.contains(&[i]).unwrap(), expect,
                "i = {} projected = {}", i, projected);
        }
    }

    #[test]
    fn subtraction_laws(
        a_lo in -5i64..5, a_hi in -5i64..5,
        b_lo in -5i64..5, b_hi in -5i64..5,
    ) {
        let a = Set::from_basic(random_set(a_lo, a_hi, 0, 0, &[]));
        let b = Set::from_basic(random_set(b_lo, b_hi, 0, 0, &[]));
        let diff = a.subtract(&b).unwrap();
        // (A - B) ∩ B = ∅
        prop_assert!(diff.intersect(&b).unwrap().is_empty().unwrap());
        // (A - B) ∪ (A ∩ B) = A
        let back = diff.union(&a.intersect(&b).unwrap()).unwrap();
        prop_assert!(back.is_equal(&a).unwrap());
        // A - A = ∅
        prop_assert!(a.subtract(&a).unwrap().is_empty().unwrap());
    }

    #[test]
    fn union_and_intersection_bounds(
        a_lo in -5i64..5, a_hi in -5i64..5,
        b_lo in -5i64..5, b_hi in -5i64..5,
    ) {
        let a = Set::from_basic(random_set(a_lo, a_hi, 0, 0, &[]));
        let b = Set::from_basic(random_set(b_lo, b_hi, 0, 0, &[]));
        let u = a.union(&b).unwrap();
        let i = a.intersect(&b).unwrap();
        prop_assert!(a.is_subset(&u).unwrap());
        prop_assert!(b.is_subset(&u).unwrap());
        prop_assert!(i.is_subset(&a).unwrap());
        prop_assert!(i.is_subset(&b).unwrap());
    }

    #[test]
    fn scanner_agrees_with_contains(
        ilo in -4i64..4, ihi in -4i64..4, jlo in -4i64..4, jhi in -4i64..4,
        extra in prop::collection::vec((-2i64..3, -2i64..3, -5i64..6), 0..2),
    ) {
        let b = random_set(ilo, ihi, jlo, jhi, &extra);
        let brute = brute_points(&b, -8, 8);
        let set = Set::from_basic(b);
        let scanner = tilefuse_presburger::Scanner::new(&set, &[]).unwrap();
        let mut scanned = Vec::new();
        scanner.for_each(&mut |p| { scanned.push((p[0], p[1])); true }).unwrap();
        prop_assert_eq!(scanned, brute);
    }

    #[test]
    fn map_reverse_involution(shift in -5i64..6, lo in -5i64..5, hi in -5i64..5) {
        let m: Map = format!(
            "{{ S[i] -> A[i + {shift}] : {} <= i <= {} }}", lo.min(hi), lo.max(hi)
        ).parse().unwrap();
        prop_assert!(m.reverse().reverse().is_equal(&m).unwrap());
        // domain(reverse) = range, range(reverse) = domain.
        prop_assert!(m.reverse().domain().unwrap()
            .is_equal(&m.range().unwrap().cast(m.reverse().space().domain_space()).unwrap())
            .unwrap());
    }

    #[test]
    fn compose_respects_images(
        s1 in -3i64..4, s2 in -3i64..4, lo in 0i64..3, hi in 3i64..7, x in 0i64..3,
    ) {
        let f: Map = format!("{{ S[i] -> T[i + {s1}] : {lo} <= i <= {hi} }}").parse().unwrap();
        let g: Map = format!("{{ T[j] -> U[j + {s2}] }}").parse().unwrap();
        let fg = f.compose(&g).unwrap();
        // (g ∘ f)(x) = g(f(x)) pointwise.
        let img = fg.image_of(&[x]).unwrap();
        let expect: Set = if (lo..=hi).contains(&x) {
            format!("{{ U[v] : v = {} }}", x + s1 + s2).parse().unwrap()
        } else {
            Set::empty(img.space().clone())
        };
        prop_assert!(img.is_equal(&expect).unwrap(), "x={} img={}", x, img);
    }

    #[test]
    fn rect_hull_contains_all_points(
        ilo in -4i64..4, ihi in -4i64..4, jlo in -4i64..4, jhi in -4i64..4,
        extra in prop::collection::vec((-2i64..3, -2i64..3, -4i64..5), 0..2),
    ) {
        let b = random_set(ilo, ihi, jlo, jhi, &extra);
        let brute = brute_points(&b, -8, 8);
        let hull = Set::from_basic(b).rect_hull(&[]).unwrap();
        match hull {
            None => prop_assert!(brute.is_empty()),
            Some(h) => {
                for (i, j) in brute {
                    prop_assert!(h[0].0 <= i && i <= h[0].1);
                    prop_assert!(h[1].0 <= j && j <= h[1].1);
                }
            }
        }
    }
}
