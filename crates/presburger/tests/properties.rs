//! Property-based tests of the set/map algebra.
//!
//! The Omega-test implementation is compared against brute-force
//! enumeration on bounded random systems, and the algebra is checked
//! against its laws. Randomness comes from a small deterministic
//! xorshift generator so the suite is reproducible and has no external
//! dependencies.

use tilefuse_presburger::{AffExpr, BasicSet, Map, Set, Space, Tuple};

/// Deterministic xorshift64* PRNG; good enough for test-case generation.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9e3779b97f4a7c15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    /// Uniform value in `lo..hi` (half-open).
    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi);
        lo + (self.next() % (hi - lo) as u64) as i64
    }

    /// Up to `max_n - 1` random `(a, c, k)` constraint triples.
    fn extras(&mut self, max_n: u64, c: i64, k: i64) -> Vec<(i64, i64, i64)> {
        let n = self.next() % max_n;
        (0..n)
            .map(|_| {
                (
                    self.range(-c, c + 1),
                    self.range(-c, c + 1),
                    self.range(-k, k + 1),
                )
            })
            .collect()
    }
}

const CASES: u64 = 64;

/// A random bounded basic set over two dims: a box plus `extra` random
/// affine inequalities.
fn random_set(ilo: i64, ihi: i64, jlo: i64, jhi: i64, extra: &[(i64, i64, i64)]) -> BasicSet {
    let sp = Space::set(&[], Tuple::new(Some("S"), &["i", "j"]));
    let i = AffExpr::dim(&sp, 0).unwrap();
    let j = AffExpr::dim(&sp, 1).unwrap();
    let mut b = BasicSet::universe(sp.clone());
    b.add_constraint(&i.ge(&AffExpr::constant(&sp, ilo.min(ihi))).unwrap())
        .unwrap();
    b.add_constraint(&i.le(&AffExpr::constant(&sp, ilo.max(ihi))).unwrap())
        .unwrap();
    b.add_constraint(&j.ge(&AffExpr::constant(&sp, jlo.min(jhi))).unwrap())
        .unwrap();
    b.add_constraint(&j.le(&AffExpr::constant(&sp, jlo.max(jhi))).unwrap())
        .unwrap();
    for &(a, c, k) in extra {
        // a*i + c*j + k >= 0
        let e = AffExpr::zero(&sp)
            .with_dim_coeff(0, a)
            .with_dim_coeff(1, c)
            .with_constant(k);
        b.add_constraint(&e.ge_zero()).unwrap();
    }
    b
}

fn brute_points(b: &BasicSet, lo: i64, hi: i64) -> Vec<(i64, i64)> {
    let mut out = Vec::new();
    for i in lo..=hi {
        for j in lo..=hi {
            if b.contains(&[i, j]).unwrap() {
                out.push((i, j));
            }
        }
    }
    out
}

#[test]
fn emptiness_matches_brute_force() {
    let mut rng = Rng::new(0xe17);
    for _ in 0..CASES {
        let (ilo, ihi) = (rng.range(-6, 6), rng.range(-6, 6));
        let (jlo, jhi) = (rng.range(-6, 6), rng.range(-6, 6));
        let extra = rng.extras(3, 3, 6);
        let b = random_set(ilo, ihi, jlo, jhi, &extra);
        let brute = brute_points(&b, -8, 8);
        assert_eq!(b.is_empty().unwrap(), brute.is_empty(), "set = {b}");
    }
}

#[test]
fn projection_is_exact() {
    let mut rng = Rng::new(0x9a0);
    for _ in 0..CASES {
        let (ilo, ihi) = (rng.range(-5, 5), rng.range(-5, 5));
        let (jlo, jhi) = (rng.range(-5, 5), rng.range(-5, 5));
        let extra = rng.extras(2, 3, 6);
        let b = random_set(ilo, ihi, jlo, jhi, &extra);
        let brute = brute_points(&b, -8, 8);
        let projected = Set::from_basic(b).project_out_dims(1, 1).unwrap();
        for i in -8..=8 {
            let expect = brute.iter().any(|&(bi, _)| bi == i);
            assert_eq!(
                projected.contains(&[i]).unwrap(),
                expect,
                "i = {i} projected = {projected}"
            );
        }
    }
}

#[test]
fn subtraction_laws() {
    let mut rng = Rng::new(0x5b);
    for _ in 0..CASES {
        let (a_lo, a_hi) = (rng.range(-5, 5), rng.range(-5, 5));
        let (b_lo, b_hi) = (rng.range(-5, 5), rng.range(-5, 5));
        let a = Set::from_basic(random_set(a_lo, a_hi, 0, 0, &[]));
        let b = Set::from_basic(random_set(b_lo, b_hi, 0, 0, &[]));
        let diff = a.subtract(&b).unwrap();
        // (A - B) ∩ B = ∅
        assert!(diff.intersect(&b).unwrap().is_empty().unwrap());
        // (A - B) ∪ (A ∩ B) = A
        let back = diff.union(&a.intersect(&b).unwrap()).unwrap();
        assert!(back.is_equal(&a).unwrap());
        // A - A = ∅
        assert!(a.subtract(&a).unwrap().is_empty().unwrap());
    }
}

#[test]
fn union_and_intersection_bounds() {
    let mut rng = Rng::new(0xbeef);
    for _ in 0..CASES {
        let (a_lo, a_hi) = (rng.range(-5, 5), rng.range(-5, 5));
        let (b_lo, b_hi) = (rng.range(-5, 5), rng.range(-5, 5));
        let a = Set::from_basic(random_set(a_lo, a_hi, 0, 0, &[]));
        let b = Set::from_basic(random_set(b_lo, b_hi, 0, 0, &[]));
        let u = a.union(&b).unwrap();
        let i = a.intersect(&b).unwrap();
        assert!(a.is_subset(&u).unwrap());
        assert!(b.is_subset(&u).unwrap());
        assert!(i.is_subset(&a).unwrap());
        assert!(i.is_subset(&b).unwrap());
    }
}

#[test]
fn scanner_agrees_with_contains() {
    let mut rng = Rng::new(0x5ca9);
    for _ in 0..CASES {
        let (ilo, ihi) = (rng.range(-4, 4), rng.range(-4, 4));
        let (jlo, jhi) = (rng.range(-4, 4), rng.range(-4, 4));
        let extra = rng.extras(2, 2, 5);
        let b = random_set(ilo, ihi, jlo, jhi, &extra);
        let brute = brute_points(&b, -8, 8);
        let set = Set::from_basic(b);
        let scanner = tilefuse_presburger::Scanner::new(&set, &[]).unwrap();
        let mut scanned = Vec::new();
        scanner
            .for_each(&mut |p| {
                scanned.push((p[0], p[1]));
                true
            })
            .unwrap();
        assert_eq!(scanned, brute);
    }
}

#[test]
fn map_reverse_involution() {
    let mut rng = Rng::new(0x1e5);
    for _ in 0..CASES {
        let shift = rng.range(-5, 6);
        let (lo, hi) = (rng.range(-5, 5), rng.range(-5, 5));
        let m: Map = format!(
            "{{ S[i] -> A[i + {shift}] : {} <= i <= {} }}",
            lo.min(hi),
            lo.max(hi)
        )
        .parse()
        .unwrap();
        assert!(m.reverse().reverse().is_equal(&m).unwrap());
        // domain(reverse) = range, range(reverse) = domain.
        assert!(m
            .reverse()
            .domain()
            .unwrap()
            .is_equal(
                &m.range()
                    .unwrap()
                    .cast(m.reverse().space().domain_space())
                    .unwrap()
            )
            .unwrap());
    }
}

#[test]
fn compose_respects_images() {
    let mut rng = Rng::new(0xc0);
    for _ in 0..CASES {
        let s1 = rng.range(-3, 4);
        let s2 = rng.range(-3, 4);
        let lo = rng.range(0, 3);
        let hi = rng.range(3, 7);
        let x = rng.range(0, 3);
        let f: Map = format!("{{ S[i] -> T[i + {s1}] : {lo} <= i <= {hi} }}")
            .parse()
            .unwrap();
        let g: Map = format!("{{ T[j] -> U[j + {s2}] }}").parse().unwrap();
        let fg = f.compose(&g).unwrap();
        // (g ∘ f)(x) = g(f(x)) pointwise.
        let img = fg.image_of(&[x]).unwrap();
        let expect: Set = if (lo..=hi).contains(&x) {
            format!("{{ U[v] : v = {} }}", x + s1 + s2).parse().unwrap()
        } else {
            Set::empty(img.space().clone())
        };
        assert!(img.is_equal(&expect).unwrap(), "x={x} img={img}");
    }
}

#[test]
fn rect_hull_contains_all_points() {
    let mut rng = Rng::new(0x4a11);
    for _ in 0..CASES {
        let (ilo, ihi) = (rng.range(-4, 4), rng.range(-4, 4));
        let (jlo, jhi) = (rng.range(-4, 4), rng.range(-4, 4));
        let extra = rng.extras(2, 2, 4);
        let b = random_set(ilo, ihi, jlo, jhi, &extra);
        let brute = brute_points(&b, -8, 8);
        let hull = Set::from_basic(b).rect_hull(&[]).unwrap();
        match hull {
            None => assert!(brute.is_empty()),
            Some(h) => {
                for (i, j) in brute {
                    assert!(h[0].0 <= i && i <= h[0].1);
                    assert!(h[1].0 <= j && j <= h[1].1);
                }
            }
        }
    }
}
