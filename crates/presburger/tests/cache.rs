//! The memo table must be semantically invisible: a warm call returns
//! exactly what a cold call computes, and hit counters actually move.
//!
//! All tests share one process-global cache, so assertions are phrased
//! as deltas around the calls under test rather than absolute counts.

use std::sync::{Mutex, MutexGuard, PoisonError};
use tilefuse_presburger::{stats, Map, Set};

/// The cache is process-global and `clear_cache` in a concurrently
/// running test would break hit-delta assertions, so every test in this
/// binary serializes on this lock.
static LOCK: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn set(s: &str) -> Set {
    s.parse().unwrap()
}

fn map(s: &str) -> Map {
    s.parse().unwrap()
}

#[test]
fn is_empty_warm_equals_cold() {
    let _g = serial();
    let src = "{ C0[x, y] : 11x + 13y >= 27 and 11x + 13y <= 45 and 7x - 9y >= -10 }";
    let s = set(src);
    stats::clear_cache();
    let before = stats::snapshot();
    let cold = s.is_empty().unwrap();
    // Same object: answered by the inline per-object memo, no global traffic.
    let warm = s.is_empty().unwrap();
    let inline_hit = stats::snapshot();
    // Distinct but structurally identical object: must hit the global memo.
    let s2 = set(src);
    let warm2 = s2.is_empty().unwrap();
    let after = stats::snapshot();
    assert_eq!(cold, warm);
    assert_eq!(cold, warm2);
    assert_eq!(
        inline_hit.is_empty.misses, after.is_empty.misses,
        "structurally identical set must not recompute: {after}"
    );
    assert!(
        after.is_empty.hits > before.is_empty.hits,
        "fresh identical object must hit the global memo: {after}"
    );
}

#[test]
fn project_warm_equals_cold() {
    let _g = serial();
    let s = set("{ C1[i, j, k] : 0 <= i <= 9 and 0 <= j <= i and 3k >= j - 7 and k <= i }");
    stats::clear_cache();
    let cold = s.project_out_dims(1, 2).unwrap();
    let before = stats::snapshot();
    let warm = s.project_out_dims(1, 2).unwrap();
    let after = stats::snapshot();
    assert!(cold.is_equal(&warm).unwrap());
    assert!(after.project.hits > before.project.hits, "{after}");
    // The cached result is also pointwise right.
    for i in -1..11 {
        assert_eq!(warm.contains(&[i]).unwrap(), (0..=9).contains(&i), "i={i}");
    }
}

#[test]
fn intersect_warm_equals_cold() {
    let _g = serial();
    let a = set("{ C2[i] : 0 <= i <= 100 }");
    let b = set("{ C2[i] : 40 <= i <= 60 }")
        .union(&set("{ C2[i] : 90 <= i <= 95 }"))
        .unwrap();
    stats::clear_cache();
    let cold = a.intersect(&b).unwrap();
    let before = stats::snapshot();
    let warm = a.intersect(&b).unwrap();
    let after = stats::snapshot();
    assert!(cold.is_equal(&warm).unwrap());
    assert!(after.intersect.hits > before.intersect.hits, "{after}");
    assert_eq!(warm.count_points(&[]).unwrap(), 21 + 6);
}

#[test]
fn apply_warm_equals_cold() {
    let _g = serial();
    let m = map("{ C3[i] -> A[a] : i <= a <= i + 2 }");
    let s = set("{ C3[i] : 0 <= i <= 5 }");
    stats::clear_cache();
    let cold = m.apply(&s).unwrap();
    let before = stats::snapshot();
    let warm = m.apply(&s).unwrap();
    let after = stats::snapshot();
    assert!(cold.is_equal(&warm).unwrap());
    assert!(after.apply.hits > before.apply.hits, "{after}");
    assert!(warm.is_equal(&set("{ A[a] : 0 <= a <= 7 }")).unwrap());
}

#[test]
fn reverse_warm_equals_cold() {
    let _g = serial();
    let m = map("{ C4[i] -> A[i + 3] : 0 <= i <= 9 }");
    stats::clear_cache();
    let cold = m.reverse();
    let before = stats::snapshot();
    let warm = m.reverse();
    let after = stats::snapshot();
    assert!(cold.is_equal(&warm).unwrap());
    assert!(after.reverse.hits > before.reverse.hits, "{after}");
    assert!(warm.reverse().is_equal(&m).unwrap());
}

#[test]
fn clear_cache_forces_recomputation_with_same_answer() {
    let _g = serial();
    let s = set("{ C5[i, j] : 0 <= i <= 7 and i <= j <= i + 3 }");
    stats::clear_cache();
    let first = s.project_out_dims(0, 1).unwrap();
    stats::clear_cache();
    let second = s.project_out_dims(0, 1).unwrap();
    assert!(first.is_equal(&second).unwrap());
}

#[test]
fn union_coalesces_identical_disjuncts() {
    let _g = serial();
    let a = set("{ C6[i] : 0 <= i <= 4 }");
    let same = a.union(&a).unwrap();
    assert_eq!(same.n_basic(), 1, "identical disjunct must not duplicate");
    let b = set("{ C6[i] : 10 <= i <= 12 }");
    let u = a.union(&b).unwrap();
    assert_eq!(u.n_basic(), 2);
    assert!(u.contains(&[11]).unwrap());
    assert!(u.contains(&[0]).unwrap());
}
