//! tilefuse — post-tiling fusion for the memory hierarchy.
//!
//! A from-scratch Rust reproduction of *"Optimizing the Memory Hierarchy by
//! Compositing Automatic Transformations on Computations and Data"*
//! (MICRO 2020): a polyhedral optimizer that tiles live-out computation
//! spaces first, derives arbitrary (overlapped) tile shapes for producer
//! stages from upwards-exposed-data footprints, and fuses *after* tiling
//! via schedule-tree extension nodes — keeping tilability and parallelism
//! while maximizing producer-consumer locality.
//!
//! This facade crate re-exports the whole stack:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`presburger`] | `tilefuse-presburger` | integer sets/maps, the isl replacement |
//! | [`pir`] | `tilefuse-pir` | programs, statements, dependences |
//! | [`schedtree`] | `tilefuse-schedtree` | schedule trees, bands, extension nodes |
//! | [`scheduler`] | `tilefuse-scheduler` | minfuse/smartfuse/maxfuse/hybridfuse |
//! | [`core`] | `tilefuse-core` | the paper's Algorithms 1–3 |
//! | [`codegen`] | `tilefuse-codegen` | interpreter + OpenMP/CUDA printers |
//! | [`memsim`] | `tilefuse-memsim` | CPU/GPU/DaVinci memory-hierarchy models |
//! | [`workloads`] | `tilefuse-workloads` | the 11 paper benchmarks + ResNet-50 |
//! | [`fuzzgen`] | `tilefuse-fuzzgen` | differential fuzzing oracle + `tilefuse-fuzz` |
//! | [`trace`] | `tilefuse-trace` | structured span tracer + Chrome-trace export |
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

pub use tilefuse_bench as bench;
pub use tilefuse_codegen as codegen;
pub use tilefuse_core as core;
pub use tilefuse_fuzzgen as fuzzgen;
pub use tilefuse_memsim as memsim;
pub use tilefuse_pir as pir;
pub use tilefuse_presburger as presburger;
pub use tilefuse_schedtree as schedtree;
pub use tilefuse_scheduler as scheduler;
pub use tilefuse_trace as trace;
pub use tilefuse_workloads as workloads;

pub use tilefuse_core::{optimize, Optimized, Options};
pub use tilefuse_scheduler::FusionHeuristic;
