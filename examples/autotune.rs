//! Tile-size auto-tuning (the paper's Section VII notes auto-tuners as a
//! complementary optimization; Table I lists the auto-tuned sizes).
//!
//! Sweeps the PolyMage auto-tuner's candidate set over the Unsharp Mask
//! pipeline with the post-tiling optimizer at every point and reports the
//! cheapest configuration under the CPU cost model.
//!
//! Run with `cargo run --release --example autotune`.

use tilefuse::bench::tune::{sweep_2d, Objective};
use tilefuse::workloads::polymage::unsharp_mask;

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let w = unsharp_mask(2048, 2048)?;
    println!("auto-tuning {} (candidates per dim: 8..512)\n", w.name);
    let result = sweep_2d(&w, Objective::Cpu, 5)?;
    println!("{:>12} {:>10}", "tile", "time (ms)");
    for p in result.points.iter().take(10) {
        println!(
            "{:>12} {:>10.4}",
            format!("{}x{}", p.tile_sizes[0], p.tile_sizes[1]),
            p.time * 1e3
        );
    }
    let best = result.best();
    println!(
        "\nbest: {}x{}  (paper's auto-tuned choice for Unsharp Mask: 8x512)",
        best.tile_sizes[0], best.tile_sizes[1]
    );
    Ok(())
}
