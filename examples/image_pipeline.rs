//! A realistic image-processing scenario: run the Harris corner detection
//! pipeline (11 stages) through every fusion strategy and compare the
//! modeled CPU execution times, reproducing the flavour of Table I /
//! Fig. 8 for one benchmark.
//!
//! Run with `cargo run --release --example image_pipeline`.

use tilefuse::codegen::{check_outputs_match, execute_tree, reference_execute};
use tilefuse::core::{optimize, Options};
use tilefuse::memsim::{cpu_time, summarize_groups, summarize_optimized, CpuModel};
use tilefuse::scheduler::{schedule, FusionHeuristic};
use tilefuse::workloads::polymage::harris;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = harris(128, 128)?;
    let p = &w.program;
    let params = p.param_values(&[]);
    println!(
        "Harris corner detection: {} stages, {} statements\n",
        w.stages,
        p.stmts().len()
    );

    let model = CpuModel::xeon_e5_2683_v4();

    // Heuristic baselines (tiling after fusion).
    for h in [FusionHeuristic::MinFuse, FusionHeuristic::SmartFuse] {
        let s = schedule(p, h)?;
        let sums = summarize_groups(p, &s.fusion.groups, &w.tile_sizes, &params)?;
        let t = cpu_time(&model, &sums)?;
        println!(
            "{:<12} {} groups, modeled time {:.3} ms",
            format!("{h:?}:"),
            s.fusion.groups.len(),
            t.total * 1e3
        );
    }

    // Post-tiling fusion.
    let opts = Options {
        tile_sizes: w.tile_sizes.clone(),
        parallel_cap: Some(1),
        startup: FusionHeuristic::MinFuse,
        ..Default::default()
    };
    let o = optimize(p, &opts)?;
    let sums = summarize_optimized(p, &o, &w.tile_sizes, &params)?;
    let t = cpu_time(&model, &sums)?;
    println!(
        "{:<12} {} groups ({} fused away), modeled time {:.3} ms",
        "Ours:",
        o.report.n_final_groups(),
        o.report.groups.len() - o.report.n_final_groups(),
        t.total * 1e3
    );
    println!("\nper-group breakdown of our schedule:");
    for (label, secs) in &t.per_group {
        println!("  {label:<40} {:.4} ms", secs * 1e3);
    }

    // Correctness: interpret the optimized schedule at a smaller size.
    let w_small = harris(24, 24)?;
    let o_small = optimize(&w_small.program, &opts)?;
    let (r, _) = reference_execute(&w_small.program, &[])?;
    let (tr, stats) = execute_tree(
        &w_small.program,
        &o_small.tree,
        &[],
        &o_small.report.scratch_scopes,
    )?;
    check_outputs_match(&w_small.program, &r, &tr, 1e-10)?;
    println!(
        "\nvalidated on a 24x24 instance ✓ (scratch hits: {})",
        stats.scratch_hits
    );
    Ok(())
}
