//! Quickstart: build a small producer/consumer pipeline, optimize it with
//! post-tiling fusion, inspect the schedule tree and generated code, and
//! validate the transformed program against the reference execution.
//!
//! Run with:
//! ```text
//! cargo run --example quickstart
//! ```

use tilefuse::codegen::{
    check_outputs_match, execute_tree, generate, print, reference_execute, Target,
};
use tilefuse::core::{optimize, Options};
use tilefuse::pir::{ArrayKind, Body, Expr, IdxExpr, Program, SchedTerm};
use tilefuse::schedtree::render;
use tilefuse::scheduler::FusionHeuristic;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 1-D pipeline: blur (3-point stencil) then brighten, 64 elements.
    //   S0: B[i] = (A[i] + A[i+1] + A[i+2]) / 3
    //   S1: C[i] = B[i] * 1.1 + 5        (C is live-out)
    let mut p = Program::new("quickstart").with_param("N", 64);
    let a = p.add_array("A", vec!["N".into()], ArrayKind::Input);
    let b = p.add_array("B", vec![("N", -2).into()], ArrayKind::Temp);
    let c = p.add_array("C", vec![("N", -2).into()], ArrayKind::Output);
    let i1 = |d| IdxExpr::dim(1, d);
    p.add_stmt(
        "{ S0[i] : 0 <= i < N - 2 }",
        vec![SchedTerm::Cst(0), SchedTerm::Var(0)],
        Body {
            target: b,
            target_idx: vec![i1(0)],
            rhs: Expr::mul(
                Expr::add(
                    Expr::load(a, vec![i1(0)]),
                    Expr::add(
                        Expr::load(a, vec![i1(0).offset(1)]),
                        Expr::load(a, vec![i1(0).offset(2)]),
                    ),
                ),
                Expr::Const(1.0 / 3.0),
            ),
        },
    )?;
    p.add_stmt(
        "{ S1[i] : 0 <= i < N - 2 }",
        vec![SchedTerm::Cst(1), SchedTerm::Var(0)],
        Body {
            target: c,
            target_idx: vec![i1(0)],
            rhs: Expr::add(
                Expr::mul(Expr::load(b, vec![i1(0)]), Expr::Const(1.1)),
                Expr::Const(5.0),
            ),
        },
    )?;

    // Optimize: tile the live-out space by 16, fuse the blur into the
    // tiles via an extension schedule.
    let opts = Options {
        tile_sizes: vec![16],
        parallel_cap: Some(1),
        startup: FusionHeuristic::MinFuse,
        ..Default::default()
    };
    let optimized = optimize(&p, &opts)?;

    println!("=== Schedule tree after post-tiling fusion ===\n");
    println!("{}", render(&optimized.tree));

    println!("=== Generated OpenMP-style code ===\n");
    let ast = generate(&optimized.tree)?;
    println!("{}", print(&ast, Target::OpenMp));

    // Validate: execute both schedules and compare the output array.
    let (reference, ref_stats) = reference_execute(&p, &[])?;
    let (transformed, stats) =
        execute_tree(&p, &optimized.tree, &[], &optimized.report.scratch_scopes)?;
    check_outputs_match(&p, &reference, &transformed, 1e-12)?;

    println!("=== Validation ===\n");
    println!("reference instances:   {}", ref_stats.total_instances());
    println!(
        "transformed instances: {} (tile-halo recomputation)",
        stats.total_instances()
    );
    println!(
        "scratch hits:          {} (producer values read tile-locally)",
        stats.scratch_hits
    );
    println!("\noutputs match bit-for-bit ✓");
    Ok(())
}
