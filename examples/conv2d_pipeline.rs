//! The paper's running example (Fig. 1(a)): a 2-D convolution with
//! quantization and ReLU. Reproduces the paper's artifacts end to end:
//!
//! 1. the initial schedule tree (Fig. 2(a)-like structure),
//! 2. the conservative fusion result and its tiled OpenMP code
//!    (Fig. 1(b)),
//! 3. the paper's relations (4) and (6) for H = W = 6, T = 2,
//! 4. the post-tiling fused tree and code (Fig. 5),
//! 5. validation and the recomputation factor of the overlapped tiles.
//!
//! Run with `cargo run --example conv2d_pipeline`.

use tilefuse::codegen::{
    check_outputs_match, execute_tree, generate, print, reference_execute, Target,
};
use tilefuse::core::{optimize, recomputation_factor, Options};
use tilefuse::pir::{ArrayKind, Body, Expr, IdxExpr, Program, SchedTerm};
use tilefuse::schedtree::render;
use tilefuse::scheduler::{schedule, FusionHeuristic};

/// Builds Fig. 1(a) with Quant(x) = x/2 and a 3×3 kernel.
fn conv2d(h: i64, w: i64) -> Result<Program, tilefuse::pir::Error> {
    let mut p = Program::new("conv2d").with_param("H", h).with_param("W", w);
    let a = p.add_array("A", vec!["H".into(), "W".into()], ArrayKind::Temp);
    let b = p.add_array("B", vec![3.into(), 3.into()], ArrayKind::Input);
    let c = p.add_array(
        "C",
        vec![("H", -2).into(), ("W", -2).into()],
        ArrayKind::Output,
    );
    let d2 = |d| IdxExpr::dim(2, d);
    let d4 = |d| IdxExpr::dim(4, d);
    p.add_stmt(
        "{ S0[h, w] : 0 <= h < H and 0 <= w < W }",
        vec![SchedTerm::Cst(0), SchedTerm::Var(0), SchedTerm::Var(1)],
        Body {
            target: a,
            target_idx: vec![d2(0), d2(1)],
            rhs: Expr::mul(Expr::load(a, vec![d2(0), d2(1)]), Expr::Const(0.5)),
        },
    )?;
    p.add_stmt(
        "{ S1[h, w] : 0 <= h <= H - 3 and 0 <= w <= W - 3 }",
        vec![
            SchedTerm::Cst(1),
            SchedTerm::Var(0),
            SchedTerm::Var(1),
            SchedTerm::Cst(0),
        ],
        Body {
            target: c,
            target_idx: vec![d2(0), d2(1)],
            rhs: Expr::Const(0.0),
        },
    )?;
    p.add_stmt(
        "{ S2[h, w, kh, kw] : 0 <= h <= H - 3 and 0 <= w <= W - 3 and 0 <= kh <= 2 and 0 <= kw <= 2 }",
        vec![
            SchedTerm::Cst(1),
            SchedTerm::Var(0),
            SchedTerm::Var(1),
            SchedTerm::Cst(1),
            SchedTerm::Var(2),
            SchedTerm::Var(3),
        ],
        Body {
            target: c,
            target_idx: vec![d4(0), d4(1)],
            rhs: Expr::add(
                Expr::load(c, vec![d4(0), d4(1)]),
                Expr::mul(
                    Expr::load(a, vec![d4(0).plus(&d4(2)), d4(1).plus(&d4(3))]),
                    Expr::load(b, vec![d4(2), d4(3)]),
                ),
            ),
        },
    )?;
    p.add_stmt(
        "{ S3[h, w] : 0 <= h <= H - 3 and 0 <= w <= W - 3 }",
        vec![SchedTerm::Cst(2), SchedTerm::Var(0), SchedTerm::Var(1)],
        Body {
            target: c,
            target_idx: vec![d2(0), d2(1)],
            rhs: Expr::relu(Expr::load(c, vec![d2(0), d2(1)])),
        },
    )?;
    Ok(p)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let p = conv2d(6, 6)?;

    println!("=== Conservative fusion (paper Section II, Fig. 2(b)) ===\n");
    let conservative = schedule(&p, FusionHeuristic::SmartFuse)?;
    println!("{}", render(&conservative.tree));
    println!(
        "fusion groups: {:?}\n",
        conservative
            .fusion
            .groups
            .iter()
            .map(|g| g
                .stmts
                .iter()
                .map(|s| p.stmt(*s).name())
                .collect::<Vec<_>>())
            .collect::<Vec<_>>()
    );

    println!("=== Aggressive fusion (compare Fig. 1(c)) ===\n");
    let aggressive = schedule(&p, FusionHeuristic::MaxFuse)?;
    println!(
        "maxfuse groups: {:?}",
        aggressive
            .fusion
            .groups
            .iter()
            .map(|g| g
                .stmts
                .iter()
                .map(|s| p.stmt(*s).name())
                .collect::<Vec<_>>())
            .collect::<Vec<_>>()
    );
    for g in &aggressive.fusion.groups {
        if g.stmts.len() > 1 {
            println!(
                "  fused group: depth {} band, coincident {:?}, shifts {:?} — \
                 outer parallelism {} (the Fig. 1(c) cost)",
                g.depth,
                g.coincident,
                g.shifts,
                if g.n_outer_parallel() == 0 {
                    "LOST"
                } else {
                    "kept"
                }
            );
        }
    }
    println!();

    println!("=== Post-tiling fusion (Algorithms 1-3), T2 = T3 = 2 ===\n");
    let opts = Options {
        tile_sizes: vec![2, 2],
        parallel_cap: None,
        startup: FusionHeuristic::SmartFuse,
        ..Default::default()
    };
    let optimized = optimize(&p, &opts)?;
    println!("{}", render(&optimized.tree));

    println!("=== Extension schedule (the paper's relation (6)) ===\n");
    for m in &optimized.report.mixed {
        for e in &m.extensions {
            println!("{}\n", e.ext);
        }
    }

    println!("=== Generated code (compare Fig. 5) ===\n");
    let ast = generate(&optimized.tree)?;
    println!("{}", print(&ast, Target::OpenMp));

    println!("=== CUDA mapping (compare Section V) ===\n");
    // Tile-local arrays become __shared__ buffers; their per-tile extent
    // is the rectangular hull of the footprint (what PPCG allocates).
    let params = p.param_values(&[]);
    let mut shared = Vec::new();
    for m in &optimized.report.mixed {
        for e in &m.extensions {
            let arr = p.stmt(e.stmt).body().target;
            let per_tile = e
                .ext
                .image_of(&vec![0; e.ext.space().n_in()])?
                .rect_hull(&params)?
                .map(|h| h.iter().map(|(l, u)| (u - l + 1).max(0) as usize).product())
                .unwrap_or(0);
            shared.push((p.array(arr).name().to_owned(), per_tile));
        }
    }
    println!("{}", tilefuse::codegen::print_cuda_kernel(&ast, &shared));

    println!("=== Validation ===\n");
    let (reference, _) = reference_execute(&p, &[])?;
    let (transformed, stats) =
        execute_tree(&p, &optimized.tree, &[], &optimized.report.scratch_scopes)?;
    check_outputs_match(&p, &reference, &transformed, 1e-12)?;
    println!("outputs match ✓  (scratch hits: {})", stats.scratch_hits);
    let rf = recomputation_factor(&optimized, &p.param_values(&[]))?;
    for (stmt, f) in rf {
        println!("recomputation factor of {stmt}: {f:.2}x (overlapped tiles)");
    }
    Ok(())
}
