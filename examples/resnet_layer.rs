//! The accelerator scenario (Table III): optimize one ResNet-50
//! convolution + batch-normalization block for a DaVinci-style NPU and
//! compare against the smartfuse baseline that fails to fuse conv and bn.
//!
//! Run with `cargo run --release --example resnet_layer`.

use tilefuse::codegen::{check_outputs_match, execute_tree, reference_execute};
use tilefuse::core::{optimize, Options};
use tilefuse::memsim::{davinci_time, summarize_groups, summarize_optimized, DavinciModel};
use tilefuse::schedtree::render;
use tilefuse::scheduler::{schedule, FusionHeuristic};
use tilefuse::workloads::resnet::{blocks, conv_bn_program, ConvBlock};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A res4-style 3x3 convolution block.
    let block = blocks()
        .into_iter()
        .find(|b| b.name == "res4 3x3")
        .expect("layer table contains res4 3x3");
    println!(
        "layer {}: {}x{}x{} -> {} channels, {}x{} kernel\n",
        block.name, block.c_in, block.hw, block.hw, block.c_out, block.k, block.k
    );
    let w = conv_bn_program(&block)?;
    let p = &w.program;
    let params = p.param_values(&[]);
    let npu = DavinciModel::ascend_910();

    // Baseline: smartfuse cannot fuse the 6-D convolution with the 3-D
    // batchnorm; the conv output round-trips through DDR.
    let s = schedule(p, FusionHeuristic::SmartFuse)?;
    let base = davinci_time(
        &npu,
        &summarize_groups(p, &s.fusion.groups, &w.tile_sizes, &params)?,
    )?;
    println!(
        "smartfuse: {} operator groups, modeled {:.3} ms",
        s.fusion.groups.len(),
        base.total * 1e3
    );

    // Ours: post-tiling fusion pulls the convolution into the bn/relu
    // tiles; the conv output lives in the unified buffer.
    let opts = Options {
        tile_sizes: w.tile_sizes.clone(),
        parallel_cap: None,
        startup: FusionHeuristic::SmartFuse,
        ..Default::default()
    };
    let o = optimize(p, &opts)?;
    let ours = davinci_time(&npu, &summarize_optimized(p, &o, &w.tile_sizes, &params)?)?;
    println!(
        "ours:      {} operator groups, modeled {:.3} ms  ({:.2}x)\n",
        o.report.n_final_groups(),
        ours.total * 1e3,
        base.total / ours.total
    );

    println!("=== Schedule tree (conv fused into bn tiles) ===\n");
    println!("{}", render(&o.tree));

    // Validate on a tiny configuration.
    let tiny = ConvBlock {
        name: "tiny",
        c_in: 3,
        c_out: 4,
        hw: 8,
        k: 3,
        repeat: 1,
    };
    let tw = conv_bn_program(&tiny)?;
    let to = optimize(
        &tw.program,
        &Options {
            tile_sizes: vec![2, 3, 3],
            parallel_cap: None,
            startup: FusionHeuristic::SmartFuse,
            ..Default::default()
        },
    )?;
    let (r, _) = reference_execute(&tw.program, &[])?;
    let (t, stats) = execute_tree(&tw.program, &to.tree, &[], &to.report.scratch_scopes)?;
    check_outputs_match(&tw.program, &r, &t, 1e-9)?;
    println!(
        "validated on a tiny block ✓ (scratch hits: {})\n",
        stats.scratch_hits
    );

    println!("=== CCE-style code (DaVinci memory scopes, tiny block) ===\n");
    let ast = tilefuse::codegen::generate(&to.tree)?;
    let cce = tilefuse::codegen::print(&ast, tilefuse::codegen::Target::Cce);
    for line in cce.lines().take(16) {
        println!("{line}");
    }
    println!("  ...");
    Ok(())
}
